#include "vector/vector.h"

namespace x100 {

void Vector::Allocate(TypeId t, int capacity) {
  type_ = t;
  capacity_ = capacity;
  size_t bytes = TypeWidth(t) * static_cast<size_t>(capacity);
  // 64-byte alignment: full cache lines, and lets the compiler vectorize.
  if (bytes == 0) bytes = 64;
  bytes = (bytes + 63) & ~size_t{63};
  void* p = std::aligned_alloc(64, bytes);
  X100_CHECK(p != nullptr);
  owned_.reset(p);
  data_ = p;
}

}  // namespace x100
