#ifndef X100_VECTOR_SCHEMA_H_
#define X100_VECTOR_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace x100 {

/// Decode information carried by a Dataflow column whose vectors hold
/// enumeration codes (§4.3): `base` is the dictionary array (value_type-typed,
/// `size` entries). The exec binder auto-inserts a fetch (the paper's
/// automatic Fetch1Join) when such a column is used by value.
struct DictRef {
  bool present = false;
  const void* base = nullptr;  // refreshed at Open (appends can move it)
  TypeId value_type = TypeId::kI64;
  int size = 0;

  bool valid() const { return present; }
};

struct Field {
  std::string name;
  TypeId type;          // physical type of the vectors (code type when dict set)
  DictRef dict;         // set iff vectors carry enum codes

  /// Type of the column's values after any dictionary decode.
  TypeId logical_type() const { return dict.valid() ? dict.value_type : type; }
};

/// Ordered column names and types of a Dataflow or Table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void Add(std::string name, TypeId t) { fields_.push_back({std::move(name), t, {}}); }
  void Add(Field f) { fields_.push_back(std::move(f)); }

  /// Index of `name`, or -1.
  int Find(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); i++) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < fields_.size(); i++) {
      if (i) s += ", ";
      s += fields_[i].name;
      s += ":";
      s += TypeName(fields_[i].type);
    }
    s += ")";
    return s;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace x100

#endif  // X100_VECTOR_SCHEMA_H_
