#ifndef X100_VECTOR_BATCH_H_
#define X100_VECTOR_BATCH_H_

#include <vector>

#include "vector/schema.h"
#include "vector/vector.h"

namespace x100 {

/// One pipelined unit of a Dataflow: `count` tuples across aligned column
/// vectors, plus an optional selection vector restricting which positions are
/// live. Operators pass VectorBatch pointers through Next() (Volcano on the
/// granularity of a vector, §4.1).
class VectorBatch {
 public:
  VectorBatch() = default;

  /// Owning batch matching `schema` with room for `capacity` tuples.
  VectorBatch(const Schema& schema, int capacity) : schema_(schema) {
    columns_.resize(schema.num_fields());
    for (int i = 0; i < schema.num_fields(); i++) {
      columns_[i].Allocate(schema.field(i).type, capacity);
    }
    sel_.Allocate(capacity);
    capacity_ = capacity;
  }

  VectorBatch(VectorBatch&&) = default;
  VectorBatch& operator=(VectorBatch&&) = default;

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  int count() const { return count_; }
  void set_count(int n) { count_ = n; }
  int capacity() const { return capacity_; }

  Vector& column(int i) { return columns_[i]; }
  const Vector& column(int i) const { return columns_[i]; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// nullptr when every position in [0, count) is live; otherwise the
  /// positions of live tuples, ascending.
  const int* sel() const { return sel_active_ ? sel_.data() : nullptr; }
  int sel_count() const { return sel_active_ ? sel_.count() : count_; }

  SelectionVector* mutable_sel() { return &sel_; }
  void ActivateSel(int n) {
    sel_.set_count(n);
    sel_active_ = true;
  }
  void ClearSel() { sel_active_ = false; }
  bool sel_active() const { return sel_active_; }

  /// Appends a column (used by Project to add computed expressions).
  Vector* AddColumn(const std::string& name, TypeId t, int capacity) {
    schema_.Add(name, t);
    columns_.emplace_back(t, capacity);
    return &columns_.back();
  }

 private:
  Schema schema_;
  std::vector<Vector> columns_;
  SelectionVector sel_;
  bool sel_active_ = false;
  int count_ = 0;
  int capacity_ = 0;
};

}  // namespace x100

#endif  // X100_VECTOR_BATCH_H_
