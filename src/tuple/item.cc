#include "tuple/item.h"

namespace x100 {

double ItemFunc::val(const char* rec, const RowStore& store, TupleProfile* prof) {
  double a = a_->val(rec, store, prof);
  double b = b_->val(rec, store, prof);
  // Exclusive timing (gprof-style): children already accounted above.
  uint64_t t0 = prof->timing ? ReadCycleCounter() : 0;
  double r = 0;
  switch (op_) {
    case ItemArith::kPlus:
      prof->item_func_plus.calls++;
      r = a + b;
      if (prof->timing) prof->item_func_plus.cycles += ReadCycleCounter() - t0;
      break;
    case ItemArith::kMinus:
      prof->item_func_minus.calls++;
      r = a - b;
      if (prof->timing) prof->item_func_minus.cycles += ReadCycleCounter() - t0;
      break;
    case ItemArith::kMul:
      prof->item_func_mul.calls++;
      r = a * b;
      if (prof->timing) prof->item_func_mul.cycles += ReadCycleCounter() - t0;
      break;
    case ItemArith::kDiv:
      prof->item_func_div.calls++;
      r = a / b;
      if (prof->timing) prof->item_func_div.cycles += ReadCycleCounter() - t0;
      break;
  }
  return r;
}

double ItemCmp::val(const char* rec, const RowStore& store, TupleProfile* prof) {
  prof->item_cmp.calls++;
  bool r;
  if (numeric_) {
    double a = a_->val(rec, store, prof);
    double b = b_->val(rec, store, prof);
    uint64_t t0 = prof->timing ? ReadCycleCounter() : 0;
    switch (op_) {
      case ItemCmpOp::kLt: r = a < b; break;
      case ItemCmpOp::kLe: r = a <= b; break;
      case ItemCmpOp::kGt: r = a > b; break;
      case ItemCmpOp::kGe: r = a >= b; break;
      case ItemCmpOp::kEq: r = a == b; break;
      default:             r = a != b; break;
    }
    if (prof->timing) prof->item_cmp.cycles += ReadCycleCounter() - t0;
  } else {
    const char* sa = a_->val_str(rec, store, prof);
    const char* sb = b_->val_str(rec, store, prof);
    uint64_t t0 = prof->timing ? ReadCycleCounter() : 0;
    int c = std::strcmp(sa, sb);
    switch (op_) {
      case ItemCmpOp::kLt: r = c < 0; break;
      case ItemCmpOp::kLe: r = c <= 0; break;
      case ItemCmpOp::kGt: r = c > 0; break;
      case ItemCmpOp::kGe: r = c >= 0; break;
      case ItemCmpOp::kEq: r = c == 0; break;
      default:             r = c != 0; break;
    }
    if (prof->timing) prof->item_cmp.cycles += ReadCycleCounter() - t0;
  }
  return r ? 1 : 0;
}

}  // namespace x100
