#include "tuple/row_ops.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace x100 {

RowHashAggr::RowHashAggr(RowOpPtr child, std::vector<ItemPtr> group_items,
                         std::vector<bool> group_is_str,
                         std::vector<Spec> specs, const RowStore& store,
                         TupleProfile* prof)
    : child_(std::move(child)),
      group_items_(std::move(group_items)),
      group_is_str_(std::move(group_is_str)),
      specs_(std::move(specs)),
      store_(store),
      prof_(prof) {
  X100_CHECK(group_items_.size() == group_is_str_.size());
}

std::vector<std::vector<Value>> RowHashAggr::Run() {
  struct GroupState {
    std::vector<Value> keys;
    std::vector<double> acc;    // sum or min/max
    std::vector<int64_t> count; // per-spec counts (for avg/count)
  };
  std::unordered_map<std::string, size_t> lookup;
  std::vector<GroupState> groups;
  std::string keybuf;

  child_->Open();
  while (const char* rec = child_->Next()) {
    // Assemble the group key, one virtual call per group item per tuple.
    keybuf.clear();
    std::vector<Value> key_vals;
    key_vals.reserve(group_items_.size());
    for (size_t g = 0; g < group_items_.size(); g++) {
      if (group_is_str_[g]) {
        const char* s = group_items_[g]->val_str(rec, store_, prof_);
        keybuf.append(s);
        keybuf.push_back('\0');
        key_vals.push_back(Value::Str(s));
      } else {
        double v = group_items_[g]->val(rec, store_, prof_);
        keybuf.append(reinterpret_cast<const char*>(&v), sizeof(v));
        key_vals.push_back(Value::F64(v));
      }
    }

    prof_->hash_lookup.calls++;
    uint64_t t0 = prof_->timing ? ReadCycleCounter() : 0;
    auto [it, fresh] = lookup.try_emplace(keybuf, groups.size());
    if (fresh) {
      GroupState gs;
      gs.keys = std::move(key_vals);
      gs.acc.resize(specs_.size(), 0.0);
      gs.count.resize(specs_.size(), 0);
      for (size_t a = 0; a < specs_.size(); a++) {
        if (specs_[a].op == Op::kMin) gs.acc[a] = 1e300;
        if (specs_[a].op == Op::kMax) gs.acc[a] = -1e300;
      }
      groups.push_back(std::move(gs));
    }
    GroupState& gs = groups[it->second];
    if (prof_->timing) prof_->hash_lookup.cycles += ReadCycleCounter() - t0;

    for (size_t a = 0; a < specs_.size(); a++) {
      prof_->item_sum_update.calls++;
      // Evaluate the input first so the update counter is exclusive,
      // gprof-style (input evaluation bills its own routines).
      double v = 0;
      if (specs_[a].op != Op::kCount) {
        v = specs_[a].input->val(rec, store_, prof_);
      }
      uint64_t u0 = prof_->timing ? ReadCycleCounter() : 0;
      switch (specs_[a].op) {
        case Op::kCount:
          gs.count[a]++;
          break;
        case Op::kSum:
        case Op::kAvg:
          gs.acc[a] += v;
          gs.count[a]++;
          break;
        case Op::kMin:
          gs.acc[a] = std::min(gs.acc[a], v);
          break;
        case Op::kMax:
          gs.acc[a] = std::max(gs.acc[a], v);
          break;
      }
      if (prof_->timing) {
        prof_->item_sum_update.cycles += ReadCycleCounter() - u0;
      }
    }
  }

  std::vector<std::vector<Value>> out;
  out.reserve(groups.size());
  for (GroupState& gs : groups) {
    std::vector<Value> row = std::move(gs.keys);
    for (size_t a = 0; a < specs_.size(); a++) {
      switch (specs_[a].op) {
        case Op::kCount:
          row.push_back(Value::I64(gs.count[a]));
          break;
        case Op::kAvg:
          row.push_back(Value::F64(
              gs.count[a] ? gs.acc[a] / static_cast<double>(gs.count[a]) : 0));
          break;
        default:
          row.push_back(Value::F64(gs.acc[a]));
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::tuple<std::string, uint64_t, uint64_t>> TupleProfile::Rows()
    const {
  return {
      {"rec_get_nth_field", rec_get_nth_field.calls, rec_get_nth_field.cycles},
      {"Field::val", field_val.calls, field_val.cycles},
      {"Item_func_plus::val", item_func_plus.calls, item_func_plus.cycles},
      {"Item_func_minus::val", item_func_minus.calls, item_func_minus.cycles},
      {"Item_func_mul::val", item_func_mul.calls, item_func_mul.cycles},
      {"Item_func_div::val", item_func_div.calls, item_func_div.cycles},
      {"Item_cmp::val", item_cmp.calls, item_cmp.cycles},
      {"Item_sum::update_field", item_sum_update.calls, item_sum_update.cycles},
      {"hash_table_lookup", hash_lookup.calls, hash_lookup.cycles},
      {"handler::next (Volcano)", row_next.calls, row_next.cycles},
  };
}

std::string TupleProfile::ToString() const {
  uint64_t total_cycles = 0;
  for (const auto& [name, calls, cycles] : Rows()) total_cycles += cycles;
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%6s %6s %12s %10s  %s\n", "cum.%", "excl.%",
                "calls", "cyc/call", "function");
  out += line;
  double cum = 0;
  for (const auto& [name, calls, cycles] : Rows()) {
    double pct =
        total_cycles ? 100.0 * static_cast<double>(cycles) / total_cycles : 0;
    cum += pct;
    std::snprintf(line, sizeof(line), "%6.1f %6.1f %12llu %10.1f  %s\n", cum,
                  pct, static_cast<unsigned long long>(calls),
                  calls ? static_cast<double>(cycles) / calls : 0.0,
                  name.c_str());
    out += line;
  }
  return out;
}

}  // namespace x100
