#include "tuple/row_store.h"

#include <cstring>

namespace x100 {

RowStore::RowStore(const Table& table, std::vector<std::string> cols) {
  std::vector<int> col_idx;
  for (const std::string& name : cols) {
    int ci = table.ColumnIndex(name);
    col_idx.push_back(ci);
    types_.push_back(table.schema().field(ci).type);
    names_.push_back(name);
  }
  int nf = static_cast<int>(types_.size());

  // Layout: uint16 offset per field, then packed fields.
  size_t header = sizeof(uint16_t) * static_cast<size_t>(nf);
  std::vector<size_t> widths;
  size_t off = header;
  std::vector<uint16_t> offsets;
  for (TypeId t : types_) {
    size_t w = TypeWidth(t);
    off = (off + w - 1) & ~(w - 1);  // natural alignment
    offsets.push_back(static_cast<uint16_t>(off));
    widths.push_back(w);
    off += w;
  }
  record_size_ = (off + 7) & ~size_t{7};

  num_rows_ = table.num_rows();
  data_ = std::make_unique<char[]>(static_cast<size_t>(num_rows_) * record_size_);

  int64_t out = 0;
  for (int64_t r = 0; r < table.total_rows(); r++) {
    if (table.IsDeleted(r)) continue;
    char* rec = data_.get() + static_cast<size_t>(out) * record_size_;
    std::memcpy(rec, offsets.data(), header);
    for (int f = 0; f < nf; f++) {
      char* p = rec + offsets[f];
      Value v = table.GetValue(r, col_idx[f]);
      switch (types_[f]) {
        case TypeId::kI8: {
          int8_t x = static_cast<int8_t>(v.AsI64());
          std::memcpy(p, &x, 1);
          break;
        }
        case TypeId::kU8: {
          uint8_t x = static_cast<uint8_t>(v.AsI64());
          std::memcpy(p, &x, 1);
          break;
        }
        case TypeId::kI16: {
          int16_t x = static_cast<int16_t>(v.AsI64());
          std::memcpy(p, &x, 2);
          break;
        }
        case TypeId::kU16: {
          uint16_t x = static_cast<uint16_t>(v.AsI64());
          std::memcpy(p, &x, 2);
          break;
        }
        case TypeId::kI32:
        case TypeId::kDate: {
          int32_t x = static_cast<int32_t>(v.AsI64());
          std::memcpy(p, &x, 4);
          break;
        }
        case TypeId::kI64: {
          int64_t x = v.AsI64();
          std::memcpy(p, &x, 8);
          break;
        }
        case TypeId::kF64: {
          double x = v.AsF64();
          std::memcpy(p, &x, 8);
          break;
        }
        case TypeId::kStr: {
          // Point into the column's stable heap / dictionary.
          const Column& src = r < table.fragment_rows()
                                  ? table.column(col_idx[f])
                                  : table.delta_column(col_idx[f]);
          int64_t rr = r < table.fragment_rows() ? r : r - table.fragment_rows();
          const char* sp = src.GetStr(rr);
          std::memcpy(p, &sp, 8);
          break;
        }
        default:
          X100_CHECK(false);
      }
    }
    out++;
  }
  X100_CHECK(out == num_rows_);
}

int RowStore::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); i++) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  X100_CHECK(false);
  return -1;
}

double RowStore::GetF64(const char* rec, int f, TupleProfile* prof) const {
  const char* p = GetFieldPtr(rec, f, prof);
  prof->field_val.calls++;
  uint64_t t0 = prof->timing ? ReadCycleCounter() : 0;
  double out;
  switch (types_[f]) {
    case TypeId::kF64: {
      double x;
      std::memcpy(&x, p, 8);
      out = x;
      break;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      int32_t x;
      std::memcpy(&x, p, 4);
      out = x;
      break;
    }
    case TypeId::kI8: {
      int8_t x;
      std::memcpy(&x, p, 1);
      out = x;
      break;
    }
    default:
      out = static_cast<double>(GetI64(rec, f, prof));
  }
  if (prof->timing) prof->field_val.cycles += ReadCycleCounter() - t0;
  return out;
}

int64_t RowStore::GetI64(const char* rec, int f, TupleProfile* prof) const {
  const char* p = GetFieldPtr(rec, f, prof);
  switch (types_[f]) {
    case TypeId::kI8: {
      int8_t x;
      std::memcpy(&x, p, 1);
      return x;
    }
    case TypeId::kU8: {
      uint8_t x;
      std::memcpy(&x, p, 1);
      return x;
    }
    case TypeId::kI16: {
      int16_t x;
      std::memcpy(&x, p, 2);
      return x;
    }
    case TypeId::kU16: {
      uint16_t x;
      std::memcpy(&x, p, 2);
      return x;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      int32_t x;
      std::memcpy(&x, p, 4);
      return x;
    }
    case TypeId::kI64: {
      int64_t x;
      std::memcpy(&x, p, 8);
      return x;
    }
    case TypeId::kF64: {
      double x;
      std::memcpy(&x, p, 8);
      return static_cast<int64_t>(x);
    }
    default:
      X100_CHECK(false);
      return 0;
  }
}

const char* RowStore::GetStr(const char* rec, int f, TupleProfile* prof) const {
  const char* p = GetFieldPtr(rec, f, prof);
  X100_CHECK(types_[f] == TypeId::kStr);
  const char* sp;
  std::memcpy(&sp, p, 8);
  return sp;
}

}  // namespace x100
