#ifndef X100_TUPLE_ROW_STORE_H_
#define X100_TUPLE_ROW_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/profiling.h"
#include "storage/table.h"
#include "tuple/tuple_profile.h"

namespace x100 {

/// NSM (row-wise) storage for the tuple-at-a-time engine, built once from a
/// columnar Table (the conversion is load time, not query time — MySQL reads
/// resident InnoDB pages too).
///
/// Record layout deliberately mirrors the indirection Table 2 exposes: every
/// record starts with a per-field offset array that accessors walk on every
/// call (rec_get_nth_field), followed by the packed field bytes. Numerics are
/// stored in their logical width; strings as pointers into the source table's
/// heaps.
class RowStore {
 public:
  RowStore(const Table& table, std::vector<std::string> cols);

  int64_t num_rows() const { return num_rows_; }
  size_t record_size() const { return record_size_; }
  int num_fields() const { return static_cast<int>(types_.size()); }
  TypeId field_type(int f) const { return types_[f]; }
  int FieldIndex(const std::string& name) const;

  const char* Record(int64_t r) const {
    return data_.get() + static_cast<size_t>(r) * record_size_;
  }

  /// rec_get_nth_field: walks the record's offset array, then unpacks.
  /// The walk is the point — this is the navigation cost of Table 2.
  const char* GetFieldPtr(const char* rec, int f, TupleProfile* prof) const {
    prof->rec_get_nth_field.calls++;
    uint64_t t0 = prof->timing ? ReadCycleCounter() : 0;
    const uint16_t* offsets = reinterpret_cast<const uint16_t*>(rec);
    // Walk (don't index) the offset table, like rec_1_get_field_start_offs.
    uint16_t off = 0;
    for (int i = 0; i <= f; i++) off = offsets[i];
    const char* p = rec + off;
    if (prof->timing) prof->rec_get_nth_field.cycles += ReadCycleCounter() - t0;
    return p;
  }

  double GetF64(const char* rec, int f, TupleProfile* prof) const;
  int64_t GetI64(const char* rec, int f, TupleProfile* prof) const;
  const char* GetStr(const char* rec, int f, TupleProfile* prof) const;

 private:
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  size_t record_size_ = 0;
  int64_t num_rows_ = 0;
  std::unique_ptr<char[]> data_;
};

}  // namespace x100

#endif  // X100_TUPLE_ROW_STORE_H_
