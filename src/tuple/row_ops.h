#ifndef X100_TUPLE_ROW_OPS_H_
#define X100_TUPLE_ROW_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "tuple/item.h"

namespace x100 {

/// Volcano operator of the tuple-at-a-time engine: Next() returns one record
/// pointer per call — the execution model whose interpretation overhead §3.1
/// quantifies.
class RowOperator {
 public:
  virtual ~RowOperator() = default;
  virtual void Open() = 0;
  virtual const char* Next() = 0;  // nullptr = exhausted
};

using RowOpPtr = std::unique_ptr<RowOperator>;

class RowScan : public RowOperator {
 public:
  RowScan(const RowStore& store, TupleProfile* prof)
      : store_(store), prof_(prof) {}
  void Open() override { pos_ = 0; }
  const char* Next() override {
    prof_->row_next.calls++;
    if (pos_ >= store_.num_rows()) return nullptr;
    return store_.Record(pos_++);
  }

 private:
  const RowStore& store_;
  TupleProfile* prof_;
  int64_t pos_ = 0;
};

class RowSelect : public RowOperator {
 public:
  RowSelect(RowOpPtr child, ItemPtr pred, const RowStore& store,
            TupleProfile* prof)
      : child_(std::move(child)), pred_(std::move(pred)), store_(store),
        prof_(prof) {}
  void Open() override { child_->Open(); }
  const char* Next() override {
    prof_->row_next.calls++;
    while (const char* rec = child_->Next()) {
      if (pred_->val(rec, store_, prof_) != 0) return rec;
    }
    return nullptr;
  }

 private:
  RowOpPtr child_;
  ItemPtr pred_;
  const RowStore& store_;
  TupleProfile* prof_;
};

/// Grouped aggregation, one tuple at a time: per tuple a key is assembled
/// from the group items, looked up in a hash table, and each aggregate Item
/// is evaluated and applied — Item_sum_sum::update_field and the 28% hash
/// overhead of Table 2.
class RowHashAggr {
 public:
  enum class Op { kSum, kCount, kAvg, kMin, kMax };
  struct Spec {
    Op op;
    ItemPtr input;  // null for kCount
  };

  RowHashAggr(RowOpPtr child, std::vector<ItemPtr> group_items,
              std::vector<bool> group_is_str, std::vector<Spec> specs,
              const RowStore& store, TupleProfile* prof);

  /// Drains the child; returns one row per group: group values (as F64/Str)
  /// then aggregate values.
  std::vector<std::vector<Value>> Run();

 private:
  RowOpPtr child_;
  std::vector<ItemPtr> group_items_;
  std::vector<bool> group_is_str_;
  std::vector<Spec> specs_;
  const RowStore& store_;
  TupleProfile* prof_;
};

}  // namespace x100

#endif  // X100_TUPLE_ROW_OPS_H_
