#ifndef X100_TUPLE_TUPLE_PROFILE_H_
#define X100_TUPLE_TUPLE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace x100 {

/// Per-routine call/cycle counters for the tuple-at-a-time engine — the
/// analogue of the MySQL gprof trace in Table 2. Call counts are always
/// exact; per-call cycle attribution is only collected when `timing` is on
/// (rdtsc around single-tuple routines perturbs them, so Table 1 timings run
/// with it off and Table 2 runs it on).
struct TupleProfile {
  bool timing = false;

  struct Routine {
    uint64_t calls = 0;
    uint64_t cycles = 0;
  };

  // The routines Table 2 highlights, by role.
  Routine rec_get_nth_field;      // record navigation
  Routine field_val;              // Field*::val_real-style unpacking
  Routine item_func_plus;         // the "real work" items
  Routine item_func_minus;
  Routine item_func_mul;
  Routine item_func_div;
  Routine item_cmp;
  Routine item_sum_update;        // Item_sum_sum::update_field
  Routine hash_lookup;            // aggregation hash table create/lookup
  Routine row_next;               // Volcano next() chain overhead

  void Reset() { *this = TupleProfile{timing}; }

  /// Rows as (name, calls, cycles), Table 2 style.
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> Rows() const;
  std::string ToString() const;

 private:
  explicit TupleProfile(bool t) : timing(t) {}

 public:
  TupleProfile() = default;
};

}  // namespace x100

#endif  // X100_TUPLE_TUPLE_PROFILE_H_
