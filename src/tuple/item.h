#ifndef X100_TUPLE_ITEM_H_
#define X100_TUPLE_ITEM_H_

#include <memory>
#include <string>
#include <vector>

#include "primitives/string_prims.h"
#include "tuple/row_store.h"

namespace x100 {

/// MySQL-style Item expression interpreter: one virtual val() call per tuple
/// per node — the Item_func_plus::val of Table 2. The virtual dispatch, the
/// per-call record navigation and the one-operation-per-call shape are the
/// pathologies §3.1 diagnoses; this class hierarchy reproduces them on
/// purpose.
class Item {
 public:
  virtual ~Item() = default;
  virtual double val(const char* rec, const RowStore& store,
                     TupleProfile* prof) = 0;
  virtual int64_t val_int(const char* rec, const RowStore& store,
                          TupleProfile* prof) {
    return static_cast<int64_t>(val(rec, store, prof));
  }
  virtual const char* val_str(const char* rec, const RowStore& store,
                              TupleProfile* prof) {
    (void)rec;
    (void)store;
    (void)prof;
    X100_CHECK(false);
    return nullptr;
  }
};

using ItemPtr = std::unique_ptr<Item>;

class ItemField : public Item {
 public:
  explicit ItemField(int field) : field_(field) {}
  double val(const char* rec, const RowStore& store, TupleProfile* prof) override {
    return store.GetF64(rec, field_, prof);
  }
  int64_t val_int(const char* rec, const RowStore& store,
                  TupleProfile* prof) override {
    return store.GetI64(rec, field_, prof);
  }
  const char* val_str(const char* rec, const RowStore& store,
                      TupleProfile* prof) override {
    return store.GetStr(rec, field_, prof);
  }

 private:
  int field_;
};

class ItemConst : public Item {
 public:
  explicit ItemConst(double v) : v_(v) {}
  double val(const char*, const RowStore&, TupleProfile*) override { return v_; }

 private:
  double v_;
};

enum class ItemArith { kPlus, kMinus, kMul, kDiv };

class ItemFunc : public Item {
 public:
  ItemFunc(ItemArith op, ItemPtr a, ItemPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  double val(const char* rec, const RowStore& store, TupleProfile* prof) override;

 private:
  ItemArith op_;
  ItemPtr a_, b_;
};

enum class ItemCmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Boolean items return 0/1 from val().
class ItemCmp : public Item {
 public:
  ItemCmp(ItemCmpOp op, ItemPtr a, ItemPtr b, bool numeric = true)
      : op_(op), a_(std::move(a)), b_(std::move(b)), numeric_(numeric) {}
  double val(const char* rec, const RowStore& store, TupleProfile* prof) override;

 private:
  ItemCmpOp op_;
  ItemPtr a_, b_;
  bool numeric_;
};

class ItemAnd : public Item {
 public:
  ItemAnd(ItemPtr a, ItemPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  double val(const char* rec, const RowStore& store, TupleProfile* prof) override {
    return a_->val(rec, store, prof) != 0 && b_->val(rec, store, prof) != 0 ? 1
                                                                            : 0;
  }

 private:
  ItemPtr a_, b_;
};

class ItemLike : public Item {
 public:
  ItemLike(ItemPtr a, std::string pat, bool negate)
      : a_(std::move(a)), pat_(std::move(pat)), negate_(negate) {}
  double val(const char* rec, const RowStore& store, TupleProfile* prof) override {
    prof->item_cmp.calls++;
    bool m = LikeMatch(a_->val_str(rec, store, prof), pat_.c_str());
    return (m != negate_) ? 1 : 0;
  }

 private:
  ItemPtr a_;
  std::string pat_;
  bool negate_;
};

// -- concise builders --
inline ItemPtr IField(int f) { return std::make_unique<ItemField>(f); }
inline ItemPtr IConst(double v) { return std::make_unique<ItemConst>(v); }
inline ItemPtr IPlus(ItemPtr a, ItemPtr b) {
  return std::make_unique<ItemFunc>(ItemArith::kPlus, std::move(a), std::move(b));
}
inline ItemPtr IMinus(ItemPtr a, ItemPtr b) {
  return std::make_unique<ItemFunc>(ItemArith::kMinus, std::move(a), std::move(b));
}
inline ItemPtr IMul(ItemPtr a, ItemPtr b) {
  return std::make_unique<ItemFunc>(ItemArith::kMul, std::move(a), std::move(b));
}
inline ItemPtr ICmp(ItemCmpOp op, ItemPtr a, ItemPtr b) {
  return std::make_unique<ItemCmp>(op, std::move(a), std::move(b));
}
inline ItemPtr IAnd(ItemPtr a, ItemPtr b) {
  return std::make_unique<ItemAnd>(std::move(a), std::move(b));
}

}  // namespace x100

#endif  // X100_TUPLE_ITEM_H_
