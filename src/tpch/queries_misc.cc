// Tuple-at-a-time Q1/Q6 and the hard-coded Q1 runner (the Table 1 baselines).

#include <algorithm>
#include <memory>

#include "common/date.h"
#include "tpch/hardcoded.h"
#include "tpch/queries.h"
#include "tuple/row_ops.h"

namespace x100 {

namespace {

std::vector<Table::ColumnSpec> Q1ResultSpecs() {
  return {{"l_returnflag", TypeId::kI8, false},
          {"l_linestatus", TypeId::kI8, false},
          {"sum_qty", TypeId::kF64, false},
          {"sum_base_price", TypeId::kF64, false},
          {"sum_disc_price", TypeId::kF64, false},
          {"sum_charge", TypeId::kF64, false},
          {"avg_qty", TypeId::kF64, false},
          {"avg_price", TypeId::kF64, false},
          {"avg_disc", TypeId::kF64, false},
          {"count_order", TypeId::kI64, false}};
}

}  // namespace

std::unique_ptr<RowStore> MakeTupleQ1Store(const Catalog& db) {
  return std::make_unique<RowStore>(
      db.Get("lineitem"),
      std::vector<std::string>{"l_returnflag", "l_linestatus", "l_quantity",
                               "l_extendedprice", "l_discount", "l_tax",
                               "l_shipdate"});
}

std::unique_ptr<Table> RunTupleQ1(const RowStore& store, TupleProfile* prof) {
  int f_rf = store.FieldIndex("l_returnflag");
  int f_ls = store.FieldIndex("l_linestatus");
  int f_qty = store.FieldIndex("l_quantity");
  int f_ext = store.FieldIndex("l_extendedprice");
  int f_disc = store.FieldIndex("l_discount");
  int f_tax = store.FieldIndex("l_tax");
  int f_ship = store.FieldIndex("l_shipdate");

  RowOpPtr scan = std::make_unique<RowScan>(store, prof);
  ItemPtr pred = ICmp(ItemCmpOp::kLe, IField(f_ship),
                      IConst(static_cast<double>(ParseDate("1998-09-02"))));
  RowOpPtr sel = std::make_unique<RowSelect>(std::move(scan), std::move(pred),
                                             store, prof);

  std::vector<ItemPtr> group;
  group.push_back(IField(f_rf));
  group.push_back(IField(f_ls));

  auto disc_price = [&] {
    return IMul(IMinus(IConst(1.0), IField(f_disc)), IField(f_ext));
  };
  std::vector<RowHashAggr::Spec> specs;
  specs.push_back({RowHashAggr::Op::kSum, IField(f_qty)});
  specs.push_back({RowHashAggr::Op::kSum, IField(f_ext)});
  specs.push_back({RowHashAggr::Op::kSum, disc_price()});
  specs.push_back({RowHashAggr::Op::kSum,
                   IMul(IPlus(IConst(1.0), IField(f_tax)), disc_price())});
  specs.push_back({RowHashAggr::Op::kAvg, IField(f_qty)});
  specs.push_back({RowHashAggr::Op::kAvg, IField(f_ext)});
  specs.push_back({RowHashAggr::Op::kAvg, IField(f_disc)});
  specs.push_back({RowHashAggr::Op::kCount, nullptr});

  RowHashAggr aggr(std::move(sel), std::move(group), {false, false},
                   std::move(specs), store, prof);
  std::vector<std::vector<Value>> rows = aggr.Run();
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              if (a[0].AsF64() != b[0].AsF64()) return a[0].AsF64() < b[0].AsF64();
              return a[1].AsF64() < b[1].AsF64();
            });

  auto out = std::make_unique<Table>("tuple_q1", Q1ResultSpecs());
  for (const std::vector<Value>& r : rows) {
    out->AppendRow({Value::I8(static_cast<int8_t>(r[0].AsF64())),
                    Value::I8(static_cast<int8_t>(r[1].AsF64())), r[2], r[3],
                    r[4], r[5], r[6], r[7], r[8], r[9]});
  }
  out->Freeze();
  return out;
}

std::unique_ptr<RowStore> MakeTupleQ6Store(const Catalog& db) {
  return std::make_unique<RowStore>(
      db.Get("lineitem"),
      std::vector<std::string>{"l_shipdate", "l_discount", "l_quantity",
                               "l_extendedprice"});
}

std::unique_ptr<Table> RunTupleQ6(const RowStore& store, TupleProfile* prof) {
  int f_ship = store.FieldIndex("l_shipdate");
  int f_disc = store.FieldIndex("l_discount");
  int f_qty = store.FieldIndex("l_quantity");
  int f_ext = store.FieldIndex("l_extendedprice");

  RowOpPtr scan = std::make_unique<RowScan>(store, prof);
  ItemPtr pred = IAnd(
      ICmp(ItemCmpOp::kGe, IField(f_ship),
           IConst(static_cast<double>(ParseDate("1994-01-01")))),
      IAnd(ICmp(ItemCmpOp::kLt, IField(f_ship),
                IConst(static_cast<double>(ParseDate("1995-01-01")))),
           IAnd(ICmp(ItemCmpOp::kGe, IField(f_disc), IConst(0.05)),
                IAnd(ICmp(ItemCmpOp::kLe, IField(f_disc), IConst(0.07)),
                     ICmp(ItemCmpOp::kLt, IField(f_qty), IConst(24.0))))));
  RowOpPtr sel = std::make_unique<RowSelect>(std::move(scan), std::move(pred),
                                             store, prof);
  std::vector<RowHashAggr::Spec> specs;
  specs.push_back({RowHashAggr::Op::kSum, IMul(IField(f_ext), IField(f_disc))});
  RowHashAggr aggr(std::move(sel), {}, {}, std::move(specs), store, prof);
  std::vector<std::vector<Value>> rows = aggr.Run();

  auto out = std::make_unique<Table>(
      "tuple_q6",
      std::vector<Table::ColumnSpec>{{"revenue", TypeId::kF64, false}});
  X100_CHECK(rows.size() == 1);
  out->AppendRow({rows[0][0]});
  out->Freeze();
  return out;
}

std::unique_ptr<Table> RunHardcodedQ1(MilDatabase* db) {
  const Bat& rf = db->Get("lineitem", "l_returnflag");
  const Bat& ls = db->Get("lineitem", "l_linestatus");
  const Bat& qty = db->Get("lineitem", "l_quantity");
  const Bat& ext = db->Get("lineitem", "l_extendedprice");
  const Bat& disc = db->Get("lineitem", "l_discount");
  const Bat& tax = db->Get("lineitem", "l_tax");
  const Bat& ship = db->Get("lineitem", "l_shipdate");

  std::vector<Q1Slot> hashtab(kQ1SlotCount);
  HardcodedQ1(rf.size(), ParseDate("1998-09-02"), rf.Data<int8_t>(),
              ls.Data<int8_t>(), qty.Data<double>(), ext.Data<double>(),
              disc.Data<double>(), tax.Data<double>(), ship.Data<int32_t>(),
              hashtab.data());

  auto out = std::make_unique<Table>("hardcoded_q1", Q1ResultSpecs());
  for (int slot = 0; slot < kQ1SlotCount; slot++) {
    const Q1Slot& s = hashtab[slot];
    if (s.count == 0) continue;
    double n = static_cast<double>(s.count);
    out->AppendRow({Value::I8(static_cast<int8_t>(slot >> 8)),
                    Value::I8(static_cast<int8_t>(slot & 0xFF)),
                    Value::F64(s.sum_qty), Value::F64(s.sum_base_price),
                    Value::F64(s.sum_disc_price), Value::F64(s.sum_charge),
                    Value::F64(s.sum_qty / n), Value::F64(s.sum_base_price / n),
                    Value::F64(s.sum_disc / n), Value::I64(s.count)});
  }
  out->Freeze();
  return out;
}

}  // namespace x100
