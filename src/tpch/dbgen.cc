#include "tpch/dbgen.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/date.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace x100 {
namespace {

// ---- fixed TPC-H vocabularies ----------------------------------------------

struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[25] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},      {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},      {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0}, {"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};
constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};
constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                       "TRUCK",   "MAIL", "FOB"};
constexpr const char* kShipInstruct[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                          "NONE", "TAKE BACK RETURN"};
constexpr const char* kTypeSyl1[6] = {"STANDARD", "SMALL",    "MEDIUM",
                                      "LARGE",    "ECONOMY",  "PROMO"};
constexpr const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                      "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                      "COPPER"};
constexpr const char* kContSyl1[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
constexpr const char* kContSyl2[8] = {"CASE", "BOX",  "BAG",  "JAR",
                                      "PKG",  "PACK", "CAN",  "DRUM"};
// Subset of dbgen's 92 colours; includes every colour a query probes.
constexpr const char* kColors[40] = {
    "almond",    "antique",  "aquamarine", "azure",    "beige",    "bisque",
    "black",     "blanched", "blue",       "blush",    "brown",    "burlywood",
    "chartreuse","chiffon",  "chocolate",  "coral",    "cornflower","cream",
    "cyan",      "dark",     "deep",       "dim",      "dodger",   "drab",
    "firebrick", "forest",   "frosted",    "gainsboro","ghost",    "goldenrod",
    "green",     "grey",     "honeydew",   "hot",      "indian",   "ivory",
    "khaki",     "lace",     "lavender",   "lemon"};
constexpr const char* kWords[24] = {
    "carefully", "quickly",  "furiously", "slyly",    "blithely", "deposits",
    "accounts",  "packages", "theodolites", "pinto",  "beans",    "instructions",
    "foxes",     "ideas",    "dependencies", "excuses", "platelets", "asymptotes",
    "courts",    "dolphins", "multipliers", "sauternes", "warhorses", "braids"};

constexpr int32_t kStartDate = 8035;    // 1992-01-01
constexpr int32_t kCurrentDate = 9298;  // 1995-06-17
constexpr int32_t kEndOrderSpan = 2405; // orderdate in [start, start+span]

std::string MakeComment(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; i++) {
    if (i) out += ' ';
    out += kWords[rng->Uniform(0, 23)];
  }
  return out;
}

double RetailPrice(int64_t pk) {
  return (90000.0 + static_cast<double>((pk / 10) % 20001) +
          100.0 * static_cast<double>(pk % 1000)) /
         100.0;
}

}  // namespace

int64_t TpchOrderCount(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(sf * 1500000));
}
int64_t TpchCustomerCount(double sf) {
  return std::max<int64_t>(3, static_cast<int64_t>(sf * 150000));
}
int64_t TpchSupplierCount(double sf) {
  return std::max<int64_t>(4, static_cast<int64_t>(sf * 10000));
}
int64_t TpchPartCount(double sf) {
  return std::max<int64_t>(4, static_cast<int64_t>(sf * 200000));
}

std::unique_ptr<Catalog> GenerateTpch(const DbgenOptions& opts) {
  auto catalog = std::make_unique<Catalog>();
  const double sf = opts.scale_factor;
  const int64_t n_orders = TpchOrderCount(sf);
  const int64_t n_cust = TpchCustomerCount(sf);
  const int64_t n_supp = TpchSupplierCount(sf);
  const int64_t n_part = TpchPartCount(sf);

  // -- region / nation --------------------------------------------------------
  Table* region = catalog->AddTable(
      "region", {{"r_regionkey", TypeId::kI32, false},
                 {"r_name", TypeId::kStr, true},
                 {"r_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(1, 1);
    for (int r = 0; r < 5; r++) {
      region->AppendRow({Value::I32(r), Value::Str(kRegions[r]),
                         Value::Str(MakeComment(&rng, 4, 12))});
    }
    region->Freeze();
  }

  Table* nation = catalog->AddTable(
      "nation", {{"n_nationkey", TypeId::kI32, false},
                 {"n_name", TypeId::kStr, true},
                 {"n_regionkey", TypeId::kI32, false},
                 {"n_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(2, 1);
    for (int n = 0; n < 25; n++) {
      nation->AppendRow({Value::I32(n), Value::Str(kNations[n].name),
                         Value::I32(kNations[n].region),
                         Value::Str(MakeComment(&rng, 4, 12))});
    }
    nation->Freeze();
  }

  // -- supplier ----------------------------------------------------------------
  Table* supplier = catalog->AddTable(
      "supplier", {{"s_suppkey", TypeId::kI32, false},
                   {"s_name", TypeId::kStr, false},
                   {"s_address", TypeId::kStr, false},
                   {"s_nationkey", TypeId::kI32, false},
                   {"s_phone", TypeId::kStr, false},
                   {"s_acctbal", TypeId::kF64, false},
                   {"s_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(3, 1);
    char buf[64];
    for (int64_t k = 1; k <= n_supp; k++) {
      std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                    static_cast<long long>(k));
      int nat = static_cast<int>(rng.Uniform(0, 24));
      char phone[24];
      std::snprintf(phone, sizeof(phone), "%02d-%03d-%03d-%04d", 10 + nat,
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(1000, 9999)));
      std::string comment = MakeComment(&rng, 6, 18);
      // ~0.05% of suppliers have complaint records (Q16 filters them out).
      if (rng.Uniform(0, 1999) == 0) comment += " Customer Complaints noted";
      supplier->AppendRow(
          {Value::I32(static_cast<int32_t>(k)), Value::Str(buf),
           Value::Str(MakeComment(&rng, 2, 4)), Value::I32(nat),
           Value::Str(phone),
           Value::F64(static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0),
           Value::Str(comment)});
    }
    supplier->Freeze();
  }

  // -- customer ----------------------------------------------------------------
  Table* customer = catalog->AddTable(
      "customer", {{"c_custkey", TypeId::kI32, false},
                   {"c_name", TypeId::kStr, false},
                   {"c_address", TypeId::kStr, false},
                   {"c_nationkey", TypeId::kI32, false},
                   {"c_phone", TypeId::kStr, false},
                   {"c_acctbal", TypeId::kF64, false},
                   {"c_mktsegment", TypeId::kStr, true},
                   {"c_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(4, 1);
    char buf[64];
    for (int64_t k = 1; k <= n_cust; k++) {
      std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                    static_cast<long long>(k));
      int nat = static_cast<int>(rng.Uniform(0, 24));
      char phone[24];
      std::snprintf(phone, sizeof(phone), "%02d-%03d-%03d-%04d", 10 + nat,
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(1000, 9999)));
      customer->AppendRow(
          {Value::I32(static_cast<int32_t>(k)), Value::Str(buf),
           Value::Str(MakeComment(&rng, 2, 4)), Value::I32(nat),
           Value::Str(phone),
           Value::F64(static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0),
           Value::Str(kSegments[rng.Uniform(0, 4)]),
           Value::Str(MakeComment(&rng, 6, 20))});
    }
    customer->Freeze();
  }

  // -- part ---------------------------------------------------------------------
  Table* part = catalog->AddTable(
      "part", {{"p_partkey", TypeId::kI32, false},
               {"p_name", TypeId::kStr, false},
               {"p_mfgr", TypeId::kStr, true},
               {"p_brand", TypeId::kStr, true},
               {"p_type", TypeId::kStr, true},
               {"p_size", TypeId::kI32, false},
               {"p_container", TypeId::kStr, true},
               {"p_retailprice", TypeId::kF64, false},
               {"p_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(5, 1);
    char buf[96];
    for (int64_t k = 1; k <= n_part; k++) {
      // p_name: five distinct colour words.
      int c[5];
      c[0] = static_cast<int>(rng.Uniform(0, 39));
      for (int i = 1; i < 5; i++) c[i] = static_cast<int>(rng.Uniform(0, 39));
      std::string name;
      for (int i = 0; i < 5; i++) {
        if (i) name += ' ';
        name += kColors[c[i]];
      }
      int m = static_cast<int>(rng.Uniform(1, 5));
      int b = static_cast<int>(rng.Uniform(1, 5));
      char mfgr[24], brand[16], type[64], cont[16];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m, b);
      std::snprintf(type, sizeof(type), "%s %s %s",
                    kTypeSyl1[rng.Uniform(0, 5)], kTypeSyl2[rng.Uniform(0, 4)],
                    kTypeSyl3[rng.Uniform(0, 4)]);
      std::snprintf(cont, sizeof(cont), "%s %s", kContSyl1[rng.Uniform(0, 4)],
                    kContSyl2[rng.Uniform(0, 7)]);
      std::snprintf(buf, sizeof(buf), "%s", MakeComment(&rng, 2, 5).c_str());
      part->AppendRow({Value::I32(static_cast<int32_t>(k)), Value::Str(name),
                       Value::Str(mfgr), Value::Str(brand), Value::Str(type),
                       Value::I32(static_cast<int32_t>(rng.Uniform(1, 50))),
                       Value::Str(cont), Value::F64(RetailPrice(k)),
                       Value::Str(buf)});
    }
    part->Freeze();
  }

  // -- partsupp -----------------------------------------------------------------
  Table* partsupp = catalog->AddTable(
      "partsupp", {{"ps_partkey", TypeId::kI32, false},
                   {"ps_suppkey", TypeId::kI32, false},
                   {"ps_availqty", TypeId::kI32, false},
                   {"ps_supplycost", TypeId::kF64, false},
                   {"ps_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(6, 1);
    for (int64_t pk = 1; pk <= n_part; pk++) {
      for (int64_t i = 0; i < 4; i++) {
        // dbgen's supplier spread formula.
        int64_t sk =
            (pk + i * (n_supp / 4 + (pk - 1) / n_supp)) % n_supp + 1;
        partsupp->AppendRow(
            {Value::I32(static_cast<int32_t>(pk)),
             Value::I32(static_cast<int32_t>(sk)),
             Value::I32(static_cast<int32_t>(rng.Uniform(1, 9999))),
             Value::F64(static_cast<double>(rng.Uniform(100, 100000)) / 100.0),
             Value::Str(MakeComment(&rng, 4, 10))});
      }
    }
    partsupp->Freeze();
  }

  // -- orders + lineitem (generated together, sorted on o_orderdate) -----------
  // o_l_start / o_l_count address the order's lineitems positionally —
  // lineitem is generated clustered with orders, so each order's lines are a
  // dense #rowId range: the natural input of FetchNJoin (§4.1.2).
  Table* orders = catalog->AddTable(
      "orders", {{"o_orderkey", TypeId::kI32, false},
                 {"o_custkey", TypeId::kI32, false},
                 {"o_orderstatus", TypeId::kI8, false},
                 {"o_totalprice", TypeId::kF64, false},
                 {"o_orderdate", TypeId::kDate, false},
                 {"o_orderpriority", TypeId::kStr, true},
                 {"o_clerk", TypeId::kStr, false},
                 {"o_shippriority", TypeId::kI32, false},
                 {"o_comment", TypeId::kStr, false},
                 {"o_l_start", TypeId::kI64, false},
                 {"o_l_count", TypeId::kI64, false}});
  Table* lineitem = catalog->AddTable(
      "lineitem", {{"l_orderkey", TypeId::kI32, false},
                   {"l_partkey", TypeId::kI32, false},
                   {"l_suppkey", TypeId::kI32, false},
                   {"l_linenumber", TypeId::kI32, false},
                   {"l_quantity", TypeId::kF64, true},
                   {"l_extendedprice", TypeId::kF64, false},
                   {"l_discount", TypeId::kF64, true},
                   {"l_tax", TypeId::kF64, true},
                   {"l_returnflag", TypeId::kI8, false},
                   {"l_linestatus", TypeId::kI8, false},
                   {"l_shipdate", TypeId::kDate, false},
                   {"l_commitdate", TypeId::kDate, false},
                   {"l_receiptdate", TypeId::kDate, false},
                   {"l_shipinstruct", TypeId::kStr, true},
                   {"l_shipmode", TypeId::kStr, true},
                   {"l_comment", TypeId::kStr, false}});
  {
    Rng rng = Rng::Keyed(7, 1);
    char clerk[24];
    int64_t n_clerks = std::max<int64_t>(1, n_orders / 1500);
    for (int64_t o = 1; o <= n_orders; o++) {
      // Sorted dates: order o gets the o-th quantile of the date range.
      int32_t odate =
          kStartDate +
          static_cast<int32_t>(((o - 1) * static_cast<int64_t>(kEndOrderSpan)) /
                               std::max<int64_t>(1, n_orders - 1));
      int64_t cust;
      do {
        cust = rng.Uniform(1, n_cust);
      } while (cust % 3 == 0);
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09lld",
                    static_cast<long long>(rng.Uniform(1, n_clerks)));
      int prio = static_cast<int>(rng.Uniform(0, 4));
      std::string ocomment = MakeComment(&rng, 5, 16);
      // ~0.7% of orders carry "special ... requests" (Q13 excludes them).
      if (rng.Uniform(0, 149) == 0) ocomment += " special bold requests";

      int nlines = static_cast<int>(rng.Uniform(1, 7));
      int64_t first_line_row = lineitem->load_column(0)->size();
      double total = 0;
      int n_f = 0, n_o = 0;
      for (int l = 1; l <= nlines; l++) {
        int64_t pk = rng.Uniform(1, n_part);
        int64_t i4 = rng.Uniform(0, 3);
        int64_t sk = (pk + i4 * (n_supp / 4 + (pk - 1) / n_supp)) % n_supp + 1;
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double extprice = qty * RetailPrice(pk);
        double disc = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
        int32_t sdate = odate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t cdate = odate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t rdate = sdate + static_cast<int32_t>(rng.Uniform(1, 30));
        char rflag =
            rdate <= kCurrentDate ? (rng.Uniform(0, 1) ? 'R' : 'A') : 'N';
        char lstatus = sdate > kCurrentDate ? 'O' : 'F';
        if (lstatus == 'F') {
          n_f++;
        } else {
          n_o++;
        }
        total += extprice * (1.0 + tax) * (1.0 - disc);

        lineitem->AppendRow(
            {Value::I32(static_cast<int32_t>(o)),
             Value::I32(static_cast<int32_t>(pk)),
             Value::I32(static_cast<int32_t>(sk)), Value::I32(l),
             Value::F64(qty), Value::F64(extprice), Value::F64(disc),
             Value::F64(tax), Value::I8(rflag), Value::I8(lstatus),
             Value::Date(sdate), Value::Date(cdate), Value::Date(rdate),
             Value::Str(kShipInstruct[rng.Uniform(0, 3)]),
             Value::Str(kShipModes[rng.Uniform(0, 6)]),
             Value::Str(MakeComment(&rng, 2, 8))});
      }
      char status = n_o == 0 ? 'F' : (n_f == 0 ? 'O' : 'P');
      orders->AppendRow({Value::I32(static_cast<int32_t>(o)),
                         Value::I32(static_cast<int32_t>(cust)),
                         Value::I8(status), Value::F64(total),
                         Value::Date(odate), Value::Str(kPriorities[prio]),
                         Value::Str(clerk), Value::I32(0),
                         Value::Str(ocomment), Value::I64(first_line_row),
                         Value::I64(nlines)});
    }
    orders->Freeze();
    lineitem->Freeze();
  }

  if (opts.build_summary_indices) {
    orders->BuildSummaryIndex("o_orderdate");
    lineitem->BuildSummaryIndex("l_shipdate");
    lineitem->BuildSummaryIndex("l_commitdate");
    lineitem->BuildSummaryIndex("l_receiptdate");
  }
  if (opts.build_join_indices) {
    X100_CHECK_OK(lineitem->BuildJoinIndex("l_orderkey", *orders, "o_orderkey"));
    X100_CHECK_OK(lineitem->BuildJoinIndex("l_partkey", *part, "p_partkey"));
    X100_CHECK_OK(lineitem->BuildJoinIndex("l_suppkey", *supplier, "s_suppkey"));
    X100_CHECK_OK(orders->BuildJoinIndex("o_custkey", *customer, "c_custkey"));
    X100_CHECK_OK(customer->BuildJoinIndex("c_nationkey", *nation, "n_nationkey"));
    X100_CHECK_OK(supplier->BuildJoinIndex("s_nationkey", *nation, "n_nationkey"));
    X100_CHECK_OK(nation->BuildJoinIndex("n_regionkey", *region, "r_regionkey"));
    X100_CHECK_OK(partsupp->BuildJoinIndex("ps_partkey", *part, "p_partkey"));
    X100_CHECK_OK(partsupp->BuildJoinIndex("ps_suppkey", *supplier, "s_suppkey"));
    X100_CHECK_OK(lineitem->BuildJoinIndex(
        std::vector<std::string>{"l_partkey", "l_suppkey"}, *partsupp,
        std::vector<std::string>{"ps_partkey", "ps_suppkey"}));
  }

  // Account the generated volume: dbgen dominates bench startup, so its
  // output shows up in every BENCH_*.json metrics snapshot.
  {
    MetricsRegistry& reg = MetricsRegistry::Get();
    int64_t rows = 0, bytes = 0;
    for (const std::string& name : catalog->TableNames()) {
      const Table& t = catalog->Get(name);
      rows += t.num_rows();
      for (int c = 0; c < t.num_columns(); c++) {
        bytes += static_cast<int64_t>(t.column(c).bytes());
      }
    }
    reg.GetCounter("dbgen.runs")->Inc();
    reg.GetCounter("dbgen.rows")->Add(rows);
    reg.GetCounter("dbgen.bytes")->Add(bytes);
  }
  return catalog;
}

}  // namespace x100
