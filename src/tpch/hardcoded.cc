#include "tpch/hardcoded.h"

namespace x100 {

void HardcodedQ1(int64_t n, int32_t hi_date,
                 const int8_t* __restrict__ p_returnflag,
                 const int8_t* __restrict__ p_linestatus,
                 const double* __restrict__ p_quantity,
                 const double* __restrict__ p_extendedprice,
                 const double* __restrict__ p_discount,
                 const double* __restrict__ p_tax,
                 const int32_t* __restrict__ p_shipdate,
                 Q1Slot* __restrict__ hashtab) {
  for (int64_t i = 0; i < n; i++) {
    if (p_shipdate[i] <= hi_date) {
      Q1Slot* entry =
          hashtab + ((static_cast<uint32_t>(static_cast<uint8_t>(
                          p_returnflag[i]))
                      << 8) +
                     static_cast<uint32_t>(static_cast<uint8_t>(
                         p_linestatus[i])));
      double discount = p_discount[i];
      double extprice = p_extendedprice[i];
      entry->count++;
      entry->sum_qty += p_quantity[i];
      entry->sum_disc += discount;
      entry->sum_base_price += extprice;
      entry->sum_disc_price += (extprice *= (1 - discount));
      entry->sum_charge += extprice * (1 + p_tax[i]);
    }
  }
}

}  // namespace x100
