// Hand-translated X100 algebra plans for TPC-H Q1-Q11 (§5). SQL subqueries
// become materialized sub-plans (RunPlan); scalar subquery results are read
// back and embedded as literals, standing in for the optimizer the paper
// lists as future work.

#include "common/date.h"
#include "tpch/queries.h"
#include "tpch/queries_x100_internal.h"

namespace x100::tpch_x100 {

using namespace x100::exprs;
using namespace x100::plan;

namespace {
const std::string kJiOrders = Table::JoinIndexName("orders");
const std::string kJiPart = Table::JoinIndexName("part");
const std::string kJiSupplier = Table::JoinIndexName("supplier");
const std::string kJiCustomer = Table::JoinIndexName("customer");
const std::string kJiNation = Table::JoinIndexName("nation");
const std::string kJiRegion = Table::JoinIndexName("region");
const double kInf = 1e300;
}  // namespace

// ---- Q1: pricing summary report --------------------------------------------
//
// With ctx->num_threads > 1 the scan+select+partial-aggregation pipeline is
// cloned across an Exchange (each worker aggregating its morsel of
// lineitem); one HashAggr above the exchange merges the per-worker partials.
// The group count is tiny (≤ 6), so partial merge is essentially free.
TablePtr Q1(ExecContext* ctx, const Catalog& db) {
  double hi = ParseDate("1998-09-02");
  const std::vector<std::string> cols = {
      "l_returnflag", "l_linestatus",  "l_quantity", "l_extendedprice",
      "l_discount",   "l_tax",         "l_shipdate"};
  const std::vector<std::string> groups = {"l_returnflag", "l_linestatus"};
  auto aggrs = [] {
    return AG(
        Sum("sum_qty", Col("l_quantity")),
        Sum("sum_base_price", Col("l_extendedprice")),
        Sum("sum_disc_price",
            Mul(Sub(LitF64(1.0), Col("l_discount")), Col("l_extendedprice"))),
        Sum("sum_charge",
            Mul(Add(LitF64(1.0), Col("l_tax")),
                Mul(Sub(LitF64(1.0), Col("l_discount")),
                    Col("l_extendedprice")))),
        Sum("sum_disc", Col("l_discount")), CountAll("count_order"));
  };

  OpPtr op;
  if (ctx->num_threads > 1) {
    const Table& li = db.Get("lineitem");
    op = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = Scan(wctx, li,
                                  {.cols = cols,
                                   .range = ScanSpec::Range{"l_shipdate",
                                                            -kInf, hi},
                                   .morsel = {w, n}});
                    s = Select(wctx, std::move(s),
                               Le(Col("l_shipdate"), LitDate("1998-09-02")));
                    return DirectAggr(wctx, std::move(s), groups, aggrs());
                  });
    op = HashAggr(ctx, std::move(op), groups, MergeAggrSpecs(aggrs()));
  } else {
    op = Scan(ctx, db.Get("lineitem"),
              {.cols = cols,
               .range = ScanSpec::Range{"l_shipdate", -kInf, hi}});
    op = Select(ctx, std::move(op),
                Le(Col("l_shipdate"), LitDate("1998-09-02")));
    op = DirectAggr(ctx, std::move(op), groups, aggrs());
  }
  op = Project(
      ctx, std::move(op),
      NE(Pass("l_returnflag"), Pass("l_linestatus"), Pass("sum_qty"),
         Pass("sum_base_price"), Pass("sum_disc_price"), Pass("sum_charge"),
         As("avg_qty", Div(Col("sum_qty"), Call1("dbl", Col("count_order")))),
         As("avg_price",
            Div(Col("sum_base_price"), Call1("dbl", Col("count_order")))),
         As("avg_disc", Div(Col("sum_disc"), Call1("dbl", Col("count_order")))),
         Pass("count_order")));
  op = Order(ctx, std::move(op), {Asc("l_returnflag"), Asc("l_linestatus")});
  return RunPlan(std::move(op), "q1");
}

// ---- Q2: minimum-cost supplier ----------------------------------------------
TablePtr Q2(ExecContext* ctx, const Catalog& db) {
  // European suppliers with nation attributes.
  auto s = Scan(ctx, db.Get("supplier"),
                {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal",
                 "s_comment", kJiNation});
  s = Fetch1Join(ctx, std::move(s), db.Get("nation"), kJiNation,
                 {{"n_name", "n_name"}, {kJiRegion, "ji_r"}});
  s = Fetch1Join(ctx, std::move(s), db.Get("region"), "ji_r",
                 {{"r_name", "r_name"}});
  s = Select(ctx, std::move(s), Eq(Col("r_name"), LitStr("EUROPE")));
  s = Project(ctx, std::move(s),
              NE(Pass("s_suppkey"), Pass("s_name"), Pass("s_address"),
                 Pass("s_phone"), Pass("s_acctbal"), Pass("s_comment"),
                 Pass("n_name")));
  TablePtr euro = RunPlan(std::move(s), "q2_euro");

  // partsupp restricted to European suppliers.
  auto ps = Scan(ctx, db.Get("partsupp"),
                 {"ps_partkey", "ps_suppkey", "ps_supplycost"});
  ps = Join(ctx, std::move(ps), Scan(ctx, *euro, {"s_suppkey"}),
            {.probe_keys = {"ps_suppkey"},
             .build_keys = {"s_suppkey"},
             .probe_out = {"ps_partkey", "ps_suppkey", "ps_supplycost"}});
  // Target parts.
  auto p = Scan(ctx, db.Get("part"),
                {"p_partkey", "p_mfgr", "p_size", "p_type"});
  p = Select(ctx, std::move(p),
             And(Eq(Col("p_size"), LitI32(15)), Like(Col("p_type"), "%BRASS")));
  p = Project(ctx, std::move(p), NE(Pass("p_partkey"), Pass("p_mfgr")));
  ps = Join(ctx, std::move(ps), std::move(p),
            {.probe_keys = {"ps_partkey"},
             .build_keys = {"p_partkey"},
             .probe_out = {"ps_partkey", "ps_suppkey", "ps_supplycost"},
             .build_out = {"p_mfgr"}});
  TablePtr psp = RunPlan(std::move(ps), "q2_psp");

  auto minc = HashAggr(ctx, Scan(ctx, *psp, {"ps_partkey", "ps_supplycost"}),
                       {"ps_partkey"}, AG(Min("min_cost", Col("ps_supplycost"))));
  TablePtr mint = RunPlan(std::move(minc), "q2_min");

  auto win = Join(ctx,
                  Scan(ctx, *psp,
                       {"ps_partkey", "ps_suppkey", "ps_supplycost", "p_mfgr"}),
                  Scan(ctx, *mint, {"ps_partkey", "min_cost"}),
                  {.probe_keys = {"ps_partkey", "ps_supplycost"},
                   .build_keys = {"ps_partkey", "min_cost"},
                   .probe_out = {"ps_partkey", "ps_suppkey", "p_mfgr"}});
  win = Join(ctx, std::move(win),
             Scan(ctx, *euro,
                  {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal",
                   "s_comment", "n_name"}),
             {.probe_keys = {"ps_suppkey"},
              .build_keys = {"s_suppkey"},
              .probe_out = {"ps_partkey", "p_mfgr"},
              .build_out = {"s_acctbal", "s_name", "n_name", "s_address",
                            "s_phone", "s_comment"}});
  win = Project(ctx, std::move(win),
                NE(Pass("s_acctbal"), Pass("s_name"), Pass("n_name"),
                   As("p_partkey", Col("ps_partkey")), Pass("p_mfgr"),
                   Pass("s_address"), Pass("s_phone"), Pass("s_comment")));
  win = TopN(ctx, std::move(win),
             {Desc("s_acctbal"), Asc("n_name"), Asc("s_name"), Asc("p_partkey")},
             100);
  return RunPlan(std::move(win), "q2");
}

// ---- Q3: shipping priority ---------------------------------------------------
TablePtr Q3(ExecContext* ctx, const Catalog& db) {
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate",
                  kJiOrders});
  li = Select(ctx, std::move(li), Gt(Col("l_shipdate"), LitDate("1995-03-15")));
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderdate", "o_orderdate"},
                   {"o_shippriority", "o_shippriority"},
                   {kJiCustomer, "ji_c"}});
  li = Select(ctx, std::move(li), Lt(Col("o_orderdate"), LitDate("1995-03-15")));
  li = Fetch1Join(ctx, std::move(li), db.Get("customer"), "ji_c",
                  {{"c_mktsegment", "c_mktsegment"}});
  li = Select(ctx, std::move(li), Eq(Col("c_mktsegment"), LitStr("BUILDING")));
  li = Project(ctx, std::move(li),
               NE(Pass("l_orderkey"), Pass("o_orderdate"), Pass("o_shippriority"),
                  As("rev", Rev())));
  li = HashAggr(ctx, std::move(li),
                {"l_orderkey", "o_orderdate", "o_shippriority"},
                AG(Sum("revenue", Col("rev"))));
  li = Project(ctx, std::move(li),
               NE(Pass("l_orderkey"), Pass("revenue"), Pass("o_orderdate"),
                  Pass("o_shippriority")));
  li = TopN(ctx, std::move(li),
            {Desc("revenue"), Asc("o_orderdate"), Asc("l_orderkey")}, 10);
  return RunPlan(std::move(li), "q3");
}

// ---- Q4: order priority checking ---------------------------------------------
TablePtr Q4(ExecContext* ctx, const Catalog& db) {
  // Build side = the (small) date-filtered orders; probe = late lineitems.
  // EXISTS becomes inner-join + per-order distinct before counting.
  double lo = ParseDate("1993-07-01"), hi = ParseDate("1993-10-01");
  auto ord = Scan(ctx, db.Get("orders"),
                  {.cols = {"o_orderkey", "o_orderdate", "o_orderpriority"},
                   .range = ScanSpec::Range{"o_orderdate", lo, hi}});
  ord = Select(ctx, std::move(ord),
               And(Ge(Col("o_orderdate"), LitDate("1993-07-01")),
                   Lt(Col("o_orderdate"), LitDate("1993-10-01"))));

  auto late = Scan(ctx, db.Get("lineitem"),
                   {"l_orderkey", "l_commitdate", "l_receiptdate"});
  late = Select(ctx, std::move(late),
                Lt(Col("l_commitdate"), Col("l_receiptdate")));
  auto j = Join(ctx, std::move(late), std::move(ord),
                {.probe_keys = {"l_orderkey"},
                 .build_keys = {"o_orderkey"},
                 .build_out = {"o_orderkey", "o_orderpriority"}});
  j = HashAggr(ctx, std::move(j), {"o_orderkey", "o_orderpriority"}, {});
  j = HashAggr(ctx, std::move(j), {"o_orderpriority"},
               AG(CountAll("order_count")));
  j = Order(ctx, std::move(j), {Asc("o_orderpriority")});
  return RunPlan(std::move(j), "q4");
}

// ---- Q5: local supplier volume -------------------------------------------------
TablePtr Q5(ExecContext* ctx, const Catalog& db) {
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_extendedprice", "l_discount", kJiOrders, kJiSupplier});
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderdate", "o_orderdate"}, {kJiCustomer, "ji_c"}});
  li = Select(ctx, std::move(li),
              And(Ge(Col("o_orderdate"), LitDate("1994-01-01")),
                  Lt(Col("o_orderdate"), LitDate("1995-01-01"))));
  li = Fetch1Join(ctx, std::move(li), db.Get("customer"), "ji_c",
                  {{"c_nationkey", "c_nationkey"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("supplier"), kJiSupplier,
                  {{"s_nationkey", "s_nationkey"}, {kJiNation, "ji_n"}});
  li = Select(ctx, std::move(li), Eq(Col("c_nationkey"), Col("s_nationkey")));
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_n",
                  {{"n_name", "n_name"}, {kJiRegion, "ji_r"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("region"), "ji_r",
                  {{"r_name", "r_name"}});
  li = Select(ctx, std::move(li), Eq(Col("r_name"), LitStr("ASIA")));
  li = Project(ctx, std::move(li), NE(Pass("n_name"), As("rev", Rev())));
  li = HashAggr(ctx, std::move(li), {"n_name"}, AG(Sum("revenue", Col("rev"))));
  li = Order(ctx, std::move(li), {Desc("revenue"), Asc("n_name")});
  return RunPlan(std::move(li), "q5");
}

// ---- Q6: forecasting revenue change --------------------------------------------
//
// Parallel variant mirrors Q1: per-worker scan/select/scalar-aggregate over a
// lineitem morsel, merged by summing the single-row partials above the
// Exchange.
TablePtr Q6(ExecContext* ctx, const Catalog& db) {
  double lo = ParseDate("1994-01-01"), hi = ParseDate("1995-01-01") - 1;
  const std::vector<std::string> cols = {"l_shipdate", "l_discount",
                                         "l_quantity", "l_extendedprice"};
  auto pred = [] {
    return And(Ge(Col("l_shipdate"), LitDate("1994-01-01")),
               And(Lt(Col("l_shipdate"), LitDate("1995-01-01")),
                   And(Ge(Col("l_discount"), LitF64(0.05)),
                       And(Le(Col("l_discount"), LitF64(0.07)),
                           Lt(Col("l_quantity"), LitF64(24.0))))));
  };
  auto aggrs = [] {
    return AG(
        Sum("revenue", Mul(Col("l_extendedprice"), Col("l_discount"))));
  };

  OpPtr li;
  if (ctx->num_threads > 1) {
    const Table& t = db.Get("lineitem");
    li = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = Scan(wctx, t,
                                  {.cols = cols,
                                   .range = ScanSpec::Range{"l_shipdate", lo,
                                                            hi},
                                   .morsel = {w, n}});
                    s = Select(wctx, std::move(s), pred());
                    return HashAggr(wctx, std::move(s), {}, aggrs());
                  });
    li = HashAggr(ctx, std::move(li), {}, MergeAggrSpecs(aggrs()));
  } else {
    li = Scan(ctx, db.Get("lineitem"),
              {.cols = cols, .range = ScanSpec::Range{"l_shipdate", lo, hi}});
    li = Select(ctx, std::move(li), pred());
    li = HashAggr(ctx, std::move(li), {}, aggrs());
  }
  return RunPlan(std::move(li), "q6");
}

// ---- Q7: volume shipping ---------------------------------------------------------
TablePtr Q7(ExecContext* ctx, const Catalog& db) {
  double lo = ParseDate("1995-01-01"), hi = ParseDate("1996-12-31");
  auto li = Scan(ctx, db.Get("lineitem"),
                 {.cols = {"l_shipdate", "l_extendedprice", "l_discount",
                           kJiOrders, kJiSupplier},
                  .range = ScanSpec::Range{"l_shipdate", lo, hi}});
  li = Select(ctx, std::move(li),
              Between(Col("l_shipdate"), LitDate("1995-01-01"),
                      LitDate("1996-12-31")));
  li = Fetch1Join(ctx, std::move(li), db.Get("supplier"), kJiSupplier,
                  {{kJiNation, "ji_sn"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_sn",
                  {{"n_name", "supp_nation"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{kJiCustomer, "ji_c"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("customer"), "ji_c",
                  {{kJiNation, "ji_cn"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_cn",
                  {{"n_name", "cust_nation"}});
  li = Select(ctx, std::move(li),
              Or(And(Eq(Col("supp_nation"), LitStr("FRANCE")),
                     Eq(Col("cust_nation"), LitStr("GERMANY"))),
                 And(Eq(Col("supp_nation"), LitStr("GERMANY")),
                     Eq(Col("cust_nation"), LitStr("FRANCE")))));
  li = Project(ctx, std::move(li),
               NE(Pass("supp_nation"), Pass("cust_nation"),
                  As("l_year", Call1("year", Col("l_shipdate"))),
                  As("volume", Rev())));
  li = HashAggr(ctx, std::move(li), {"supp_nation", "cust_nation", "l_year"},
                AG(Sum("revenue", Col("volume"))));
  li = Order(ctx, std::move(li),
             {Asc("supp_nation"), Asc("cust_nation"), Asc("l_year")});
  return RunPlan(std::move(li), "q7");
}

// ---- Q8: national market share ----------------------------------------------------
TablePtr Q8(ExecContext* ctx, const Catalog& db) {
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_extendedprice", "l_discount", kJiPart, kJiOrders,
                  kJiSupplier});
  li = Fetch1Join(ctx, std::move(li), db.Get("part"), kJiPart,
                  {{"p_type", "p_type"}});
  li = Select(ctx, std::move(li),
              Eq(Col("p_type"), LitStr("ECONOMY ANODIZED STEEL")));
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderdate", "o_orderdate"}, {kJiCustomer, "ji_c"}});
  li = Select(ctx, std::move(li),
              Between(Col("o_orderdate"), LitDate("1995-01-01"),
                      LitDate("1996-12-31")));
  li = Fetch1Join(ctx, std::move(li), db.Get("customer"), "ji_c",
                  {{kJiNation, "ji_cn"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_cn",
                  {{kJiRegion, "ji_cr"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("region"), "ji_cr",
                  {{"r_name", "r_name"}});
  li = Select(ctx, std::move(li), Eq(Col("r_name"), LitStr("AMERICA")));
  li = Fetch1Join(ctx, std::move(li), db.Get("supplier"), kJiSupplier,
                  {{kJiNation, "ji_sn"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_sn",
                  {{"n_name", "s_nation"}});
  li = Project(ctx, std::move(li),
               NE(As("o_year", Call1("year", Col("o_orderdate"))),
                  As("volume", Rev()), Pass("s_nation")));
  TablePtr base = RunPlan(std::move(li), "q8_base");

  auto tot = HashAggr(ctx, Scan(ctx, *base, {"o_year", "volume"}), {"o_year"},
                      AG(Sum("total", Col("volume"))));
  TablePtr tott = RunPlan(std::move(tot), "q8_tot");
  auto bra = Select(ctx, Scan(ctx, *base, {"o_year", "volume", "s_nation"}),
                    Eq(Col("s_nation"), LitStr("BRAZIL")));
  bra = HashAggr(ctx, std::move(bra), {"o_year"},
                 AG(Sum("brazil", Col("volume"))));
  TablePtr brat = RunPlan(std::move(bra), "q8_bra");

  auto fin = Join(ctx, Scan(ctx, *tott, {"o_year", "total"}),
                  Scan(ctx, *brat, {"o_year", "brazil"}),
                  {.probe_keys = {"o_year"},
                   .build_keys = {"o_year"},
                   .probe_out = {"o_year", "total"},
                   .build_out = {"brazil"},
                   .type = JoinType::kLeftOuterDefault});
  fin = Project(ctx, std::move(fin),
                NE(Pass("o_year"),
                   As("mkt_share", Div(Col("brazil"), Col("total")))));
  fin = Order(ctx, std::move(fin), {Asc("o_year")});
  return RunPlan(std::move(fin), "q8");
}

// ---- Q9: product type profit measure ------------------------------------------------
TablePtr Q9(ExecContext* ctx, const Catalog& db) {
  const std::string ji_ps = Table::JoinIndexName("partsupp");
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_quantity", "l_extendedprice", "l_discount", kJiPart,
                  kJiSupplier, kJiOrders, ji_ps});
  li = Fetch1Join(ctx, std::move(li), db.Get("part"), kJiPart,
                  {{"p_name", "p_name"}});
  li = Select(ctx, std::move(li), Like(Col("p_name"), "%green%"));
  li = Fetch1Join(ctx, std::move(li), db.Get("supplier"), kJiSupplier,
                  {{kJiNation, "ji_sn"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_sn",
                  {{"n_name", "nation"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderdate", "o_orderdate"}});
  // The composite (l_partkey,l_suppkey) -> partsupp join index turns the
  // supply-cost lookup into a positional Fetch1Join.
  li = Fetch1Join(ctx, std::move(li), db.Get("partsupp"), ji_ps,
                  {{"ps_supplycost", "ps_supplycost"}});
  li = Project(
      ctx, std::move(li),
      NE(Pass("nation"), As("o_year", Call1("year", Col("o_orderdate"))),
         As("amount", Sub(Rev(), Mul(Col("ps_supplycost"), Col("l_quantity"))))));
  li = HashAggr(ctx, std::move(li), {"nation", "o_year"},
                AG(Sum("sum_profit", Col("amount"))));
  li = Order(ctx, std::move(li), {Asc("nation"), Desc("o_year")});
  return RunPlan(std::move(li), "q9");
}

// ---- Q10: returned item reporting ----------------------------------------------------
TablePtr Q10(ExecContext* ctx, const Catalog& db) {
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_returnflag", "l_extendedprice", "l_discount", kJiOrders});
  li = Select(ctx, std::move(li), Eq(Col("l_returnflag"), LitChar('R')));
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderdate", "o_orderdate"}, {kJiCustomer, "ji_c"}});
  li = Select(ctx, std::move(li),
              And(Ge(Col("o_orderdate"), LitDate("1993-10-01")),
                  Lt(Col("o_orderdate"), LitDate("1994-01-01"))));
  // Aggregate on the customer #rowId alone (it determines every customer
  // attribute) and fetch the attributes per *group* afterwards — far fewer
  // fetches and no string group keys.
  li = Project(ctx, std::move(li), NE(Pass("ji_c"), As("rev", Rev())));
  li = HashAggr(ctx, std::move(li), {"ji_c"}, AG(Sum("revenue", Col("rev"))));
  li = Fetch1Join(ctx, std::move(li), db.Get("customer"), "ji_c",
                  {{"c_custkey", "c_custkey"},
                   {"c_name", "c_name"},
                   {"c_acctbal", "c_acctbal"},
                   {"c_phone", "c_phone"},
                   {"c_address", "c_address"},
                   {"c_comment", "c_comment"},
                   {kJiNation, "ji_n"}});
  li = Fetch1Join(ctx, std::move(li), db.Get("nation"), "ji_n",
                  {{"n_name", "n_name"}});
  li = Project(ctx, std::move(li),
               NE(Pass("c_custkey"), Pass("c_name"), Pass("revenue"),
                  Pass("c_acctbal"), Pass("n_name"), Pass("c_address"),
                  Pass("c_phone"), Pass("c_comment")));
  li = TopN(ctx, std::move(li), {Desc("revenue"), Asc("c_custkey")}, 20);
  return RunPlan(std::move(li), "q10");
}

// ---- Q11: important stock identification ----------------------------------------------
TablePtr Q11(ExecContext* ctx, const Catalog& db) {
  double sf = static_cast<double>(db.Get("orders").num_rows()) / 1500000.0;
  auto mk = [&](const char* name) {
    auto ps = Scan(ctx, db.Get("partsupp"),
                   {"ps_partkey", "ps_availqty", "ps_supplycost", kJiSupplier});
    ps = Fetch1Join(ctx, std::move(ps), db.Get("supplier"), kJiSupplier,
                    {{kJiNation, "ji_n"}});
    ps = Fetch1Join(ctx, std::move(ps), db.Get("nation"), "ji_n",
                    {{"n_name", "n_name"}});
    ps = Select(ctx, std::move(ps), Eq(Col("n_name"), LitStr("GERMANY")));
    ps = Project(ctx, std::move(ps),
                 NE(Pass("ps_partkey"),
                    As("value", Mul(Col("ps_supplycost"), Col("ps_availqty")))));
    return RunPlan(std::move(ps), name);
  };
  TablePtr base = mk("q11_base");

  auto tot = HashAggr(ctx, Scan(ctx, *base, {"value"}), {},
                      AG(Sum("total", Col("value"))));
  TablePtr tott = RunPlan(std::move(tot), "q11_tot");
  double threshold = ScalarF64(*tott, "total") * 0.0001 / std::max(sf, 1e-9);

  auto per = HashAggr(ctx, Scan(ctx, *base, {"ps_partkey", "value"}),
                      {"ps_partkey"}, AG(Sum("value", Col("value"))));
  per = Select(ctx, std::move(per), Gt(Col("value"), LitF64(threshold)));
  per = Order(ctx, std::move(per), {Desc("value"), Asc("ps_partkey")});
  return RunPlan(std::move(per), "q11");
}

}  // namespace x100::tpch_x100
