#ifndef X100_TPCH_QUERIES_H_
#define X100_TPCH_QUERIES_H_

#include <memory>
#include <optional>

#include "exec/operator.h"
#include "mil/mil_db.h"
#include "storage/catalog.h"
#include "storage/compression.h"
#include "tuple/tuple_profile.h"

namespace x100 {

inline constexpr int kNumTpchQueries = 22;

/// Runs TPC-H query `q` (1-22) on the X100 engine; the result is a frozen
/// Table in the query's output column order, already sorted per the query's
/// ORDER BY (with deterministic tiebreaks so engines can be compared).
/// All 22 queries are hand-translated to X100 algebra, as in §5; SQL
/// subqueries become materialized sub-plans.
std::unique_ptr<Table> RunX100Query(int q, ExecContext* ctx, const Catalog& db);

/// Disk-backed variants of Q1, Q3, Q6 and Q14: the same plans fed from
/// ColumnBM blocks through `bm` (optionally codec-compressed; `codec` pins
/// one codec for every block, else each block gets the cheapest by sampled
/// trial-encode) instead of in-RAM fragments. With ctx->num_threads > 1 the
/// block scans run morsel-parallel under an Exchange. Results are
/// bit-identical to RunX100Query(q, ...).
class ColumnBm;
std::unique_ptr<Table> RunX100QueryDisk(
    int q, ExecContext* ctx, const Catalog& db, ColumnBm* bm,
    bool compress = false, std::optional<CodecId> codec = std::nullopt);

/// Same queries hand-translated to MIL column algebra (full materialization).
/// Result schema/order matches RunX100Query for cross-checking.
std::unique_ptr<Table> RunMilQuery(int q, MilSession* session, MilDatabase* db);

/// Tuple-at-a-time engine: Q1 and Q6 only (the Table 1 baseline).
/// `store` must be a RowStore over lineitem with the query's columns; use
/// MakeTupleQ1Store / MakeTupleQ6Store.
class RowStore;
std::unique_ptr<RowStore> MakeTupleQ1Store(const Catalog& db);
std::unique_ptr<Table> RunTupleQ1(const RowStore& store, TupleProfile* prof);
std::unique_ptr<RowStore> MakeTupleQ6Store(const Catalog& db);
std::unique_ptr<Table> RunTupleQ6(const RowStore& store, TupleProfile* prof);

/// Hard-coded Q1 (Figure 4) over plain arrays (built via MilDatabase BATs);
/// returns the same result table shape as RunX100Query(1).
std::unique_ptr<Table> RunHardcodedQ1(MilDatabase* db);

}  // namespace x100

#endif  // X100_TPCH_QUERIES_H_
