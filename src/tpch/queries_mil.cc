// Hand-translated MIL (column-at-a-time, fully materializing) programs for
// all 22 TPC-H queries — the MonetDB/MIL side of Table 4, and for Q1 the
// Table 3 trace. Each program mirrors its X100 counterpart's semantics so
// results are bit-comparable; positional joins exploit the dense 1-based
// keys exactly as MIL's fetchjoin-into-void exploits join indices (§3.2).

#include <algorithm>

#include "common/date.h"
#include "common/profiling.h"
#include "tpch/queries.h"

namespace x100 {
namespace {

struct Mq {
  MilSession* s;
  MilDatabase* db;

  const Bat& B(const char* t, const char* c) { return db->Get(t, c); }
};

/// Dense 1-based (or 0-based with bias 0) i32 keys -> positional oids.
Bat KeyOids(Mq& q, const Bat& keys, int64_t bias,
            const char* label = nullptr) {
  uint64_t t0 = NowNanos();
  Bat out(TypeId::kI64);
  out.ResizeUninitialized(keys.size());
  const int32_t* k = keys.Data<int32_t>();
  int64_t* o = out.MutableData<int64_t>();
  for (int64_t i = 0; i < keys.size(); i++) {
    o[i] = static_cast<int64_t>(k[i]) - bias;
  }
  if (q.s && q.s->trace) {
    q.s->Log(label ? label : "[-](keys,1).oid", (NowNanos() - t0) / 1e6,
             keys.bytes() + out.bytes(), out.size());
  }
  return out;
}

Bat F(Mq& q, const Bat& oids, const Bat& src, const char* label = nullptr) {
  return MilFetchJoin(q.s, oids, src, label);
}

/// (partkey, suppkey) -> one i64 key.
Bat ComboKey(const Bat& a, const Bat& b) {
  Bat out(TypeId::kI64);
  out.ResizeUninitialized(a.size());
  const int32_t* da = a.Data<int32_t>();
  const int32_t* db = b.Data<int32_t>();
  int64_t* o = out.MutableData<int64_t>();
  for (int64_t i = 0; i < a.size(); i++) {
    o[i] = (static_cast<int64_t>(da[i]) << 32) | static_cast<uint32_t>(db[i]);
  }
  return out;
}

/// out[pos[i]] = vals[i], everything else `def`; out has n slots.
Bat ScatterI64(int64_t n, const Bat& pos, const Bat& vals, int64_t def) {
  Bat out(TypeId::kI64);
  out.ResizeUninitialized(n);
  int64_t* o = out.MutableData<int64_t>();
  for (int64_t i = 0; i < n; i++) o[i] = def;
  const int64_t* p = pos.Data<int64_t>();
  const int64_t* v = vals.Data<int64_t>();
  for (int64_t i = 0; i < pos.size(); i++) o[p[i]] = v[i];
  return out;
}

Bat ScatterF64(int64_t n, const Bat& pos, const Bat& vals, double def) {
  Bat out(TypeId::kF64);
  out.ResizeUninitialized(n);
  double* o = out.MutableData<double>();
  for (int64_t i = 0; i < n; i++) o[i] = def;
  const int64_t* p = pos.Data<int64_t>();
  const double* v = vals.Data<double>();
  for (int64_t i = 0; i < pos.size(); i++) o[p[i]] = v[i];
  return out;
}

struct ResCol {
  const char* name;
  const Bat* bat;
};

/// Assembles aligned BATs into a result Table, optionally permuted by
/// `order` (oids) and truncated to `limit`.
std::unique_ptr<Table> MakeResult(const char* name, std::vector<ResCol> cols,
                                  const Bat* order = nullptr,
                                  int64_t limit = -1) {
  std::vector<Table::ColumnSpec> specs;
  specs.reserve(cols.size());
  for (const ResCol& c : cols) specs.push_back({c.name, c.bat->type(), false});
  auto out = std::make_unique<Table>(name, std::move(specs));
  int64_t n = cols.empty() ? 0 : cols[0].bat->size();
  if (order) n = order->size();
  if (limit >= 0) n = std::min(n, limit);
  std::vector<Value> row(cols.size());
  for (int64_t i = 0; i < n; i++) {
    int64_t r = order ? order->Data<int64_t>()[i] : i;
    for (size_t c = 0; c < cols.size(); c++) row[c] = cols[c].bat->ValueAt(r);
    out->AppendRow(row);
  }
  out->Freeze();
  return out;
}

std::unique_ptr<Table> ScalarResult(const char* name, const char* col, Value v) {
  auto out = std::make_unique<Table>(
      name, std::vector<Table::ColumnSpec>{{col, v.type(), false}});
  out->AppendRow({v});
  out->Freeze();
  return out;
}

Value D(const char* ymd) { return Value::Date(ParseDate(ymd)); }

// ------------------------------ Q1 -------------------------------------------
std::unique_ptr<Table> MQ1(Mq& q) {
  const Bat& shipdate = q.B("lineitem", "l_shipdate");
  Bat s0 = MilUSelect(q.s, shipdate, MilCmp::kLe, D("1998-09-02"),
                      "s0 := select(l_shipdate).mark");
  Bat rf = F(q, s0, q.B("lineitem", "l_returnflag"), "s1 := join(s0,l_returnflag)");
  Bat ls = F(q, s0, q.B("lineitem", "l_linestatus"), "s2 := join(s0,l_linestatus)");
  Bat ext = F(q, s0, q.B("lineitem", "l_extendedprice"), "s3 := join(s0,l_extprice)");
  Bat disc = F(q, s0, q.B("lineitem", "l_discount"), "s4 := join(s0,l_discount)");
  Bat tax = F(q, s0, q.B("lineitem", "l_tax"), "s5 := join(s0,l_tax)");
  Bat qty = F(q, s0, q.B("lineitem", "l_quantity"), "s6 := join(s0,l_quantity)");

  int64_t ng = 0, ng2 = 0;
  Bat g1 = MilGroup(q.s, rf, &ng, "s7 := group(s1)");
  Bat g = MilGroupRefine(q.s, g1, ng, ls, &ng2, "s8 := group(s7,s2)");
  Bat reps = MilGroupReps(q.s, g, ng2, "s9 := unique(s8.mirror)");

  Bat r0 = MilMapVal(q.s, MilArith::kAdd, Value::F64(1.0), tax,
                     "r0 := [+](1.0,s5)");
  Bat r1 = MilMapVal(q.s, MilArith::kSub, Value::F64(1.0), disc,
                     "r1 := [-](1.0,s4)");
  Bat r2 = MilMap(q.s, MilArith::kMul, ext, r1, "r2 := [*](s3,r1)");
  Bat r3 = MilMap(q.s, MilArith::kMul, r2, r0, "r3 := [*](r2,r0)");

  Bat sum_charge = MilSumGrouped(q.s, r3, g, ng2, "r4 := {sum}(r3,s8,s9)");
  Bat sum_disc_price = MilSumGrouped(q.s, r2, g, ng2, "r5 := {sum}(r2,s8,s9)");
  Bat sum_base = MilSumGrouped(q.s, ext, g, ng2, "r6 := {sum}(s3,s8,s9)");
  Bat sum_disc = MilSumGrouped(q.s, disc, g, ng2, "r7 := {sum}(s4,s8,s9)");
  Bat sum_qty = MilSumGrouped(q.s, qty, g, ng2, "r8 := {sum}(s6,s8,s9)");
  Bat cnt = MilCountGrouped(q.s, g, ng2, "r9 := {count}(s7,s8,s9)");

  Bat avg_qty = MilMap(q.s, MilArith::kDiv, sum_qty, cnt, "[/](r8,r9)");
  Bat avg_price = MilMap(q.s, MilArith::kDiv, sum_base, cnt, "[/](r6,r9)");
  Bat avg_disc = MilMap(q.s, MilArith::kDiv, sum_disc, cnt, "[/](r7,r9)");

  Bat rf_g = F(q, reps, rf, "join(s9,s1)");
  Bat ls_g = F(q, reps, ls, "join(s9,s2)");
  Bat order = MilSortOids(q.s, {&rf_g, &ls_g}, {false, false}, "sort(rf,ls)");
  return MakeResult("q1", {{"l_returnflag", &rf_g},
                           {"l_linestatus", &ls_g},
                           {"sum_qty", &sum_qty},
                           {"sum_base_price", &sum_base},
                           {"sum_disc_price", &sum_disc_price},
                           {"sum_charge", &sum_charge},
                           {"avg_qty", &avg_qty},
                           {"avg_price", &avg_price},
                           {"avg_disc", &avg_disc},
                           {"count_order", &cnt}},
                    &order);
}

// ------------------------------ Q2 -------------------------------------------
std::unique_ptr<Table> MQ2(Mq& q) {
  Bat a = MilUSelect(q.s, q.B("part", "p_size"), MilCmp::kEq, Value::I32(15));
  Bat t_a = F(q, a, q.B("part", "p_type"));
  Bat b = MilUSelectLike(q.s, t_a, "%BRASS", false);
  Bat pp = F(q, b, a);
  Bat pkeys = F(q, pp, q.B("part", "p_partkey"));

  Bat snat = KeyOids(q, q.B("supplier", "s_nationkey"), 0);
  Bat sreg = KeyOids(q, F(q, snat, q.B("nation", "n_regionkey")), 0);
  Bat srname = F(q, sreg, q.B("region", "r_name"));
  Bat es = MilUSelect(q.s, srname, MilCmp::kEq, Value::Str("EUROPE"));
  Bat esk = F(q, es, q.B("supplier", "s_suppkey"));

  Bat m1 = MilSemiJoin(q.s, q.B("partsupp", "ps_suppkey"), esk);
  Bat pk_e = F(q, m1, q.B("partsupp", "ps_partkey"));
  Bat m2 = MilSemiJoin(q.s, pk_e, pkeys);
  Bat psp = F(q, m2, m1);

  Bat cost = F(q, psp, q.B("partsupp", "ps_supplycost"));
  Bat pk2 = F(q, psp, q.B("partsupp", "ps_partkey"));
  Bat sk2 = F(q, psp, q.B("partsupp", "ps_suppkey"));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, pk2, &ng);
  Bat minc = MilMinGrouped(q.s, cost, g, ng);
  Bat row_min = F(q, g, minc);
  Bat w = MilUSelectColCol(q.s, cost, row_min, MilCmp::kEq);

  Bat wp = F(q, w, pk2);
  Bat ws = F(q, w, sk2);
  Bat soid = KeyOids(q, ws, 1);
  Bat acct = F(q, soid, q.B("supplier", "s_acctbal"));
  Bat sname = F(q, soid, q.B("supplier", "s_name"));
  Bat saddr = F(q, soid, q.B("supplier", "s_address"));
  Bat sphone = F(q, soid, q.B("supplier", "s_phone"));
  Bat scomm = F(q, soid, q.B("supplier", "s_comment"));
  Bat nname = F(q, KeyOids(q, F(q, soid, q.B("supplier", "s_nationkey")), 0),
                q.B("nation", "n_name"));
  Bat mfgr = F(q, KeyOids(q, wp, 1), q.B("part", "p_mfgr"));

  Bat order =
      MilSortOids(q.s, {&acct, &nname, &sname, &wp}, {true, false, false, false});
  return MakeResult("q2", {{"s_acctbal", &acct},
                           {"s_name", &sname},
                           {"n_name", &nname},
                           {"p_partkey", &wp},
                           {"p_mfgr", &mfgr},
                           {"s_address", &saddr},
                           {"s_phone", &sphone},
                           {"s_comment", &scomm}},
                    &order, 100);
}

// ------------------------------ Q3 -------------------------------------------
std::unique_ptr<Table> MQ3(Mq& q) {
  Bat s0 = MilUSelect(q.s, q.B("lineitem", "l_shipdate"), MilCmp::kGt,
                      D("1995-03-15"));
  Bat ok0 = F(q, s0, q.B("lineitem", "l_orderkey"));
  Bat od0 = F(q, KeyOids(q, ok0, 1), q.B("orders", "o_orderdate"));
  Bat s1 = MilUSelect(q.s, od0, MilCmp::kLt, D("1995-03-15"));
  Bat rows1 = F(q, s1, s0);
  Bat ok1 = F(q, s1, ok0);
  Bat od1 = F(q, s1, od0);
  Bat seg =
      F(q, KeyOids(q, F(q, KeyOids(q, ok1, 1), q.B("orders", "o_custkey")), 1),
        q.B("customer", "c_mktsegment"));
  Bat s2 = MilUSelect(q.s, seg, MilCmp::kEq, Value::Str("BUILDING"));
  Bat rows = F(q, s2, rows1);
  Bat ok = F(q, s2, ok1);
  Bat od = F(q, s2, od1);
  Bat prio = F(q, KeyOids(q, ok, 1), q.B("orders", "o_shippriority"));

  Bat disc = F(q, rows, q.B("lineitem", "l_discount"));
  Bat ext = F(q, rows, q.B("lineitem", "l_extendedprice"));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0), disc), ext);

  int64_t ng = 0;
  Bat g = MilGroup(q.s, ok, &ng);  // orderkey determines odate and priority
  Bat sums = MilSumGrouped(q.s, rev, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat ok_g = F(q, reps, ok);
  Bat od_g = F(q, reps, od);
  Bat pr_g = F(q, reps, prio);
  Bat order = MilSortOids(q.s, {&sums, &od_g, &ok_g}, {true, false, false});
  return MakeResult("q3", {{"l_orderkey", &ok_g},
                           {"revenue", &sums},
                           {"o_orderdate", &od_g},
                           {"o_shippriority", &pr_g}},
                    &order, 10);
}

// ------------------------------ Q4 -------------------------------------------
std::unique_ptr<Table> MQ4(Mq& q) {
  Bat late = MilUSelectColCol(q.s, q.B("lineitem", "l_commitdate"),
                              q.B("lineitem", "l_receiptdate"), MilCmp::kLt);
  Bat lok = F(q, late, q.B("lineitem", "l_orderkey"));
  Bat o1 = MilUSelectRange(q.s, q.B("orders", "o_orderdate"), D("1993-07-01"),
                           Value::Date(ParseDate("1993-10-01") - 1));
  Bat okeys = F(q, o1, q.B("orders", "o_orderkey"));
  Bat m = MilSemiJoin(q.s, okeys, lok);
  Bat prio_o1 = F(q, o1, q.B("orders", "o_orderpriority"));
  Bat prio = F(q, m, prio_o1);
  int64_t ng = 0;
  Bat g = MilGroup(q.s, prio, &ng);
  Bat cnt = MilCountGrouped(q.s, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat pv = F(q, reps, prio);
  Bat order = MilSortOids(q.s, {&pv}, {false});
  return MakeResult("q4", {{"o_orderpriority", &pv}, {"order_count", &cnt}},
                    &order);
}

// ------------------------------ Q5 -------------------------------------------
std::unique_ptr<Table> MQ5(Mq& q) {
  Bat looid = KeyOids(q, q.B("lineitem", "l_orderkey"), 1);
  Bat od = F(q, looid, q.B("orders", "o_orderdate"));
  Bat s0 = MilUSelectRange(q.s, od, D("1994-01-01"),
                           Value::Date(ParseDate("1995-01-01") - 1));
  Bat ck = F(q, s0, F(q, looid, q.B("orders", "o_custkey")));
  Bat cnat = F(q, KeyOids(q, ck, 1), q.B("customer", "c_nationkey"));
  Bat snat = F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_suppkey")), 1),
               q.B("supplier", "s_nationkey"));
  Bat s1 = MilUSelectColCol(q.s, cnat, snat, MilCmp::kEq);
  Bat nk = F(q, s1, snat);
  Bat nname = F(q, KeyOids(q, nk, 0), q.B("nation", "n_name"));
  Bat rname =
      F(q, KeyOids(q, F(q, KeyOids(q, nk, 0), q.B("nation", "n_regionkey")), 0),
        q.B("region", "r_name"));
  Bat s2 = MilUSelect(q.s, rname, MilCmp::kEq, Value::Str("ASIA"));
  Bat nname2 = F(q, s2, nname);
  Bat rows = F(q, s2, F(q, s1, s0));
  Bat disc = F(q, rows, q.B("lineitem", "l_discount"));
  Bat ext = F(q, rows, q.B("lineitem", "l_extendedprice"));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0), disc), ext);
  int64_t ng = 0;
  Bat g = MilGroup(q.s, nname2, &ng);
  Bat sums = MilSumGrouped(q.s, rev, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat nv = F(q, reps, nname2);
  Bat order = MilSortOids(q.s, {&sums, &nv}, {true, false});
  return MakeResult("q5", {{"n_name", &nv}, {"revenue", &sums}}, &order);
}

// ------------------------------ Q6 -------------------------------------------
std::unique_ptr<Table> MQ6(Mq& q) {
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_shipdate"), D("1994-01-01"),
                           Value::Date(ParseDate("1995-01-01") - 1));
  Bat disc = F(q, s0, q.B("lineitem", "l_discount"));
  Bat s1 = MilUSelectRange(q.s, disc, Value::F64(0.05), Value::F64(0.07));
  Bat qty = F(q, s1, F(q, s0, q.B("lineitem", "l_quantity")));
  Bat s2 = MilUSelect(q.s, qty, MilCmp::kLt, Value::F64(24.0));
  Bat rows = F(q, s2, F(q, s1, s0));
  Bat rev =
      MilMap(q.s, MilArith::kMul, F(q, rows, q.B("lineitem", "l_extendedprice")),
             F(q, rows, q.B("lineitem", "l_discount")));
  return ScalarResult("q6", "revenue", Value::F64(MilSum(q.s, rev)));
}

// ------------------------------ Q7 -------------------------------------------
std::unique_ptr<Table> MQ7(Mq& q) {
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_shipdate"), D("1995-01-01"),
                           D("1996-12-31"));
  Bat snn =
      F(q,
        KeyOids(q,
                F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_suppkey")), 1),
                  q.B("supplier", "s_nationkey")),
                0),
        q.B("nation", "n_name"));
  Bat cnn = F(
      q,
      KeyOids(
          q,
          F(q,
            KeyOids(q,
                    F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_orderkey")), 1),
                      q.B("orders", "o_custkey")),
                    1),
            q.B("customer", "c_nationkey")),
          0),
      q.B("nation", "n_name"));

  Bat a = MilUSelect(q.s, snn, MilCmp::kEq, Value::Str("FRANCE"));
  Bat ca = F(q, a, cnn);
  Bat a2 = MilUSelect(q.s, ca, MilCmp::kEq, Value::Str("GERMANY"));
  Bat pa = F(q, a2, a);
  Bat b = MilUSelect(q.s, snn, MilCmp::kEq, Value::Str("GERMANY"));
  Bat cb = F(q, b, cnn);
  Bat b2 = MilUSelect(q.s, cb, MilCmp::kEq, Value::Str("FRANCE"));
  Bat pb = F(q, b2, b);
  Bat u = MilUnionOids(q.s, pa, pb);

  Bat sn_u = F(q, u, snn);
  Bat cn_u = F(q, u, cnn);
  Bat rows = F(q, u, s0);
  Bat year = MilMapYear(q.s, F(q, rows, q.B("lineitem", "l_shipdate")));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, rows, q.B("lineitem", "l_discount"))),
                   F(q, rows, q.B("lineitem", "l_extendedprice")));

  int64_t ng = 0, ng2 = 0, ng3 = 0;
  Bat g1 = MilGroup(q.s, sn_u, &ng);
  Bat g2 = MilGroupRefine(q.s, g1, ng, cn_u, &ng2);
  Bat g = MilGroupRefine(q.s, g2, ng2, year, &ng3);
  Bat sums = MilSumGrouped(q.s, rev, g, ng3);
  Bat reps = MilGroupReps(q.s, g, ng3);
  Bat sv = F(q, reps, sn_u);
  Bat cv = F(q, reps, cn_u);
  Bat yv = F(q, reps, year);
  Bat order = MilSortOids(q.s, {&sv, &cv, &yv}, {false, false, false});
  return MakeResult("q7", {{"supp_nation", &sv},
                           {"cust_nation", &cv},
                           {"l_year", &yv},
                           {"revenue", &sums}},
                    &order);
}

// ------------------------------ Q8 -------------------------------------------
std::unique_ptr<Table> MQ8(Mq& q) {
  Bat pt =
      F(q, KeyOids(q, q.B("lineitem", "l_partkey"), 1), q.B("part", "p_type"));
  Bat s0 = MilUSelect(q.s, pt, MilCmp::kEq, Value::Str("ECONOMY ANODIZED STEEL"));
  Bat ook = KeyOids(q, F(q, s0, q.B("lineitem", "l_orderkey")), 1);
  Bat od = F(q, ook, q.B("orders", "o_orderdate"));
  Bat s1 = MilUSelectRange(q.s, od, D("1995-01-01"), D("1996-12-31"));
  Bat rows1 = F(q, s1, s0);
  Bat od1 = F(q, s1, od);
  Bat cnat =
      F(q, KeyOids(q, F(q, F(q, s1, ook), q.B("orders", "o_custkey")), 1),
        q.B("customer", "c_nationkey"));
  Bat crname =
      F(q,
        KeyOids(q, F(q, KeyOids(q, cnat, 0), q.B("nation", "n_regionkey")), 0),
        q.B("region", "r_name"));
  Bat s2 = MilUSelect(q.s, crname, MilCmp::kEq, Value::Str("AMERICA"));
  Bat rows2 = F(q, s2, rows1);
  Bat od2 = F(q, s2, od1);
  Bat snname =
      F(q,
        KeyOids(q,
                F(q, KeyOids(q, F(q, rows2, q.B("lineitem", "l_suppkey")), 1),
                  q.B("supplier", "s_nationkey")),
                0),
        q.B("nation", "n_name"));
  Bat year = MilMapYear(q.s, od2);
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, rows2, q.B("lineitem", "l_discount"))),
                   F(q, rows2, q.B("lineitem", "l_extendedprice")));

  int64_t ng = 0;
  Bat g = MilGroup(q.s, year, &ng);
  Bat tot = MilSumGrouped(q.s, rev, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat yv = F(q, reps, year);

  Bat bsel = MilUSelect(q.s, snname, MilCmp::kEq, Value::Str("BRAZIL"));
  Bat yb = F(q, bsel, year);
  Bat rb = F(q, bsel, rev);
  int64_t ngb = 0;
  Bat gb = MilGroup(q.s, yb, &ngb);
  Bat sb = MilSumGrouped(q.s, rb, gb, ngb);
  Bat repsb = MilGroupReps(q.s, gb, ngb);
  Bat yvb = F(q, repsb, yb);

  MilJoinResult jr = MilJoin(q.s, yv, yvb);
  Bat bra = ScatterF64(yv.size(), jr.left_oids, F(q, jr.right_oids, sb), 0.0);
  Bat share = MilMap(q.s, MilArith::kDiv, bra, tot);
  Bat order = MilSortOids(q.s, {&yv}, {false});
  return MakeResult("q8", {{"o_year", &yv}, {"mkt_share", &share}}, &order);
}

// ------------------------------ Q9 -------------------------------------------
std::unique_ptr<Table> MQ9(Mq& q) {
  Bat pn =
      F(q, KeyOids(q, q.B("lineitem", "l_partkey"), 1), q.B("part", "p_name"));
  Bat s0 = MilUSelectLike(q.s, pn, "%green%", false);
  Bat pk = F(q, s0, q.B("lineitem", "l_partkey"));
  Bat sk = F(q, s0, q.B("lineitem", "l_suppkey"));
  Bat nname =
      F(q,
        KeyOids(q, F(q, KeyOids(q, sk, 1), q.B("supplier", "s_nationkey")), 0),
        q.B("nation", "n_name"));
  Bat year =
      MilMapYear(q.s, F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_orderkey")), 1),
                        q.B("orders", "o_orderdate")));

  Bat li_combo = ComboKey(pk, sk);
  Bat ps_combo =
      ComboKey(q.B("partsupp", "ps_partkey"), q.B("partsupp", "ps_suppkey"));
  MilJoinResult jr = MilJoin(q.s, li_combo, ps_combo);
  // Each lineitem matches exactly one partsupp row; left oids are ascending
  // and unique, so everything below is aligned through left_oids.
  Bat cost = F(q, jr.right_oids, q.B("partsupp", "ps_supplycost"));
  Bat qty = F(q, jr.left_oids, F(q, s0, q.B("lineitem", "l_quantity")));
  Bat disc = F(q, jr.left_oids, F(q, s0, q.B("lineitem", "l_discount")));
  Bat ext = F(q, jr.left_oids, F(q, s0, q.B("lineitem", "l_extendedprice")));
  Bat nn = F(q, jr.left_oids, nname);
  Bat yy = F(q, jr.left_oids, year);

  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0), disc), ext);
  Bat amount =
      MilMap(q.s, MilArith::kSub, rev, MilMap(q.s, MilArith::kMul, cost, qty));

  int64_t ng = 0, ng2 = 0;
  Bat g1 = MilGroup(q.s, nn, &ng);
  Bat g = MilGroupRefine(q.s, g1, ng, yy, &ng2);
  Bat sums = MilSumGrouped(q.s, amount, g, ng2);
  Bat reps = MilGroupReps(q.s, g, ng2);
  Bat nv = F(q, reps, nn);
  Bat yv = F(q, reps, yy);
  Bat order = MilSortOids(q.s, {&nv, &yv}, {false, true});
  return MakeResult("q9",
                    {{"nation", &nv}, {"o_year", &yv}, {"sum_profit", &sums}},
                    &order);
}

// ------------------------------ Q10 ------------------------------------------
std::unique_ptr<Table> MQ10(Mq& q) {
  Bat s0 = MilUSelect(q.s, q.B("lineitem", "l_returnflag"), MilCmp::kEq,
                      Value::I64('R'));
  Bat od = F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_orderkey")), 1),
             q.B("orders", "o_orderdate"));
  Bat s1 = MilUSelectRange(q.s, od, D("1993-10-01"),
                           Value::Date(ParseDate("1994-01-01") - 1));
  Bat rows = F(q, s1, s0);
  Bat ck = F(q, KeyOids(q, F(q, rows, q.B("lineitem", "l_orderkey")), 1),
             q.B("orders", "o_custkey"));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, rows, q.B("lineitem", "l_discount"))),
                   F(q, rows, q.B("lineitem", "l_extendedprice")));

  int64_t ng = 0;
  Bat g = MilGroup(q.s, ck, &ng);
  Bat sums = MilSumGrouped(q.s, rev, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat ckv = F(q, reps, ck);
  Bat coid = KeyOids(q, ckv, 1);
  Bat cname = F(q, coid, q.B("customer", "c_name"));
  Bat cacct = F(q, coid, q.B("customer", "c_acctbal"));
  Bat cphone = F(q, coid, q.B("customer", "c_phone"));
  Bat caddr = F(q, coid, q.B("customer", "c_address"));
  Bat ccomm = F(q, coid, q.B("customer", "c_comment"));
  Bat nname = F(q, KeyOids(q, F(q, coid, q.B("customer", "c_nationkey")), 0),
                q.B("nation", "n_name"));
  Bat order = MilSortOids(q.s, {&sums, &ckv}, {true, false});
  return MakeResult("q10", {{"c_custkey", &ckv},
                            {"c_name", &cname},
                            {"revenue", &sums},
                            {"c_acctbal", &cacct},
                            {"n_name", &nname},
                            {"c_address", &caddr},
                            {"c_phone", &cphone},
                            {"c_comment", &ccomm}},
                    &order, 20);
}

// ------------------------------ Q11 ------------------------------------------
std::unique_ptr<Table> MQ11(Mq& q) {
  double sf = static_cast<double>(q.B("orders", "o_orderkey").size()) / 1500000.0;
  Bat nname = F(q,
                KeyOids(q,
                        F(q, KeyOids(q, q.B("partsupp", "ps_suppkey"), 1),
                          q.B("supplier", "s_nationkey")),
                        0),
                q.B("nation", "n_name"));
  Bat s0 = MilUSelect(q.s, nname, MilCmp::kEq, Value::Str("GERMANY"));
  Bat value =
      MilMap(q.s, MilArith::kMul, F(q, s0, q.B("partsupp", "ps_supplycost")),
             F(q, s0, q.B("partsupp", "ps_availqty")));
  double threshold = MilSum(q.s, value) * 0.0001 / std::max(sf, 1e-9);
  Bat pk = F(q, s0, q.B("partsupp", "ps_partkey"));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, pk, &ng);
  Bat sums = MilSumGrouped(q.s, value, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat pkv = F(q, reps, pk);
  Bat sel = MilUSelect(q.s, sums, MilCmp::kGt, Value::F64(threshold));
  Bat pks = F(q, sel, pkv);
  Bat vs = F(q, sel, sums);
  Bat order = MilSortOids(q.s, {&vs, &pks}, {true, false});
  return MakeResult("q11", {{"ps_partkey", &pks}, {"value", &vs}}, &order);
}

// ------------------------------ Q12 ------------------------------------------
std::unique_ptr<Table> MQ12(Mq& q) {
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_receiptdate"), D("1994-01-01"),
                           Value::Date(ParseDate("1995-01-01") - 1));
  Bat mode = F(q, s0, q.B("lineitem", "l_shipmode"));
  Bat m1 = MilUSelect(q.s, mode, MilCmp::kEq, Value::Str("MAIL"));
  Bat m2 = MilUSelect(q.s, mode, MilCmp::kEq, Value::Str("SHIP"));
  Bat u = MilUnionOids(q.s, m1, m2);
  Bat rows1 = F(q, u, s0);
  Bat mode1 = F(q, u, mode);
  Bat cd = F(q, rows1, q.B("lineitem", "l_commitdate"));
  Bat rd = F(q, rows1, q.B("lineitem", "l_receiptdate"));
  Bat c1 = MilUSelectColCol(q.s, cd, rd, MilCmp::kLt);
  Bat rows2 = F(q, c1, rows1);
  Bat mode2 = F(q, c1, mode1);
  Bat sd = F(q, rows2, q.B("lineitem", "l_shipdate"));
  Bat cd2 = F(q, c1, cd);
  Bat c2 = MilUSelectColCol(q.s, sd, cd2, MilCmp::kLt);
  Bat rows3 = F(q, c2, rows2);
  Bat mode3 = F(q, c2, mode2);
  Bat prio = F(q, KeyOids(q, F(q, rows3, q.B("lineitem", "l_orderkey")), 1),
               q.B("orders", "o_orderpriority"));

  int64_t ng = 0;
  Bat g = MilGroup(q.s, mode3, &ng);
  Bat tot = MilCountGrouped(q.s, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat mv = F(q, reps, mode3);

  Bat h1 = MilUSelect(q.s, prio, MilCmp::kEq, Value::Str("1-URGENT"));
  Bat h2 = MilUSelect(q.s, prio, MilCmp::kEq, Value::Str("2-HIGH"));
  Bat hu = MilUnionOids(q.s, h1, h2);
  Bat mh = F(q, hu, mode3);
  int64_t ngh = 0;
  Bat gh = MilGroup(q.s, mh, &ngh);
  Bat hc = MilCountGrouped(q.s, gh, ngh);
  Bat repsh = MilGroupReps(q.s, gh, ngh);
  Bat mvh = F(q, repsh, mh);

  MilJoinResult jr = MilJoin(q.s, mv, mvh);
  Bat high = ScatterI64(mv.size(), jr.left_oids, F(q, jr.right_oids, hc), 0);
  Bat low(TypeId::kI64);
  low.ResizeUninitialized(mv.size());
  for (int64_t i = 0; i < mv.size(); i++) {
    low.MutableData<int64_t>()[i] =
        tot.Data<int64_t>()[i] - high.Data<int64_t>()[i];
  }
  Bat order = MilSortOids(q.s, {&mv}, {false});
  return MakeResult("q12", {{"l_shipmode", &mv},
                            {"high_line_count", &high},
                            {"low_line_count", &low}},
                    &order);
}

// ------------------------------ Q13 ------------------------------------------
std::unique_ptr<Table> MQ13(Mq& q) {
  Bat o1 =
      MilUSelectLike(q.s, q.B("orders", "o_comment"), "%special%requests%", true);
  Bat ck = F(q, o1, q.B("orders", "o_custkey"));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, ck, &ng);
  Bat cnt = MilCountGrouped(q.s, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat ckv = F(q, reps, ck);
  int64_t n_cust = q.B("customer", "c_custkey").size();
  Bat counts = ScatterI64(n_cust, KeyOids(q, ckv, 1), cnt, 0);
  int64_t ng2 = 0;
  Bat g2 = MilGroup(q.s, counts, &ng2);
  Bat dist = MilCountGrouped(q.s, g2, ng2);
  Bat reps2 = MilGroupReps(q.s, g2, ng2);
  Bat cv = F(q, reps2, counts);
  Bat order = MilSortOids(q.s, {&dist, &cv}, {true, true});
  return MakeResult("q13", {{"c_count", &cv}, {"custdist", &dist}}, &order);
}

// ------------------------------ Q14 ------------------------------------------
std::unique_ptr<Table> MQ14(Mq& q) {
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_shipdate"), D("1995-09-01"),
                           Value::Date(ParseDate("1995-10-01") - 1));
  Bat pt = F(q, KeyOids(q, F(q, s0, q.B("lineitem", "l_partkey")), 1),
             q.B("part", "p_type"));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, s0, q.B("lineitem", "l_discount"))),
                   F(q, s0, q.B("lineitem", "l_extendedprice")));
  double total = MilSum(q.s, rev);
  Bat pm = MilUSelectLike(q.s, pt, "PROMO%", false);
  double promo = MilSum(q.s, F(q, pm, rev));
  return ScalarResult("q14", "promo_revenue", Value::F64(100.0 * promo / total));
}

// ------------------------------ Q15 ------------------------------------------
std::unique_ptr<Table> MQ15(Mq& q) {
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_shipdate"), D("1996-01-01"),
                           Value::Date(ParseDate("1996-04-01") - 1));
  Bat sk = F(q, s0, q.B("lineitem", "l_suppkey"));
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, s0, q.B("lineitem", "l_discount"))),
                   F(q, s0, q.B("lineitem", "l_extendedprice")));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, sk, &ng);
  Bat sums = MilSumGrouped(q.s, rev, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat skv = F(q, reps, sk);
  Value mx = MilMax(q.s, sums);
  Bat w = MilUSelect(q.s, sums, MilCmp::kEq, mx);
  Bat wk = F(q, w, skv);
  Bat wr = F(q, w, sums);
  Bat soid = KeyOids(q, wk, 1);
  Bat sname = F(q, soid, q.B("supplier", "s_name"));
  Bat saddr = F(q, soid, q.B("supplier", "s_address"));
  Bat sphone = F(q, soid, q.B("supplier", "s_phone"));
  Bat order = MilSortOids(q.s, {&wk}, {false});
  return MakeResult("q15", {{"s_suppkey", &wk},
                            {"s_name", &sname},
                            {"s_address", &saddr},
                            {"s_phone", &sphone},
                            {"total_revenue", &wr}},
                    &order);
}

// ------------------------------ Q16 ------------------------------------------
std::unique_ptr<Table> MQ16(Mq& q) {
  Bat b1 =
      MilUSelect(q.s, q.B("part", "p_brand"), MilCmp::kNe, Value::Str("Brand#45"));
  Bat t1 = F(q, b1, q.B("part", "p_type"));
  Bat b2 = MilUSelectLike(q.s, t1, "MEDIUM POLISHED%", true);
  Bat pp = F(q, b2, b1);
  Bat sz = F(q, pp, q.B("part", "p_size"));
  Bat in_set(TypeId::kI64);
  {
    const int sizes[8] = {49, 14, 23, 45, 19, 3, 36, 9};
    bool first = true;
    for (int v : sizes) {
      Bat m = MilUSelect(q.s, sz, MilCmp::kEq, Value::I32(v));
      if (first) {
        in_set = std::move(m);
        first = false;
      } else {
        in_set = MilUnionOids(q.s, in_set, m);
      }
    }
  }
  Bat pp2 = F(q, in_set, pp);
  Bat pkeys = F(q, pp2, q.B("part", "p_partkey"));

  Bat sb = MilUSelectLike(q.s, q.B("supplier", "s_comment"),
                          "%Customer%Complaints%", false);
  Bat bad_keys = F(q, sb, q.B("supplier", "s_suppkey"));
  Bat m1 = MilAntiJoin(q.s, q.B("partsupp", "ps_suppkey"), bad_keys);
  Bat m2 = MilSemiJoin(q.s, F(q, m1, q.B("partsupp", "ps_partkey")), pkeys);
  Bat psr = F(q, m2, m1);

  Bat poid = KeyOids(q, F(q, psr, q.B("partsupp", "ps_partkey")), 1);
  Bat br = F(q, poid, q.B("part", "p_brand"));
  Bat ty = F(q, poid, q.B("part", "p_type"));
  Bat szr = F(q, poid, q.B("part", "p_size"));
  Bat skr = F(q, psr, q.B("partsupp", "ps_suppkey"));

  int64_t ng = 0, ng2 = 0, ng3 = 0, ng4 = 0;
  Bat g1 = MilGroup(q.s, br, &ng);
  Bat g2 = MilGroupRefine(q.s, g1, ng, ty, &ng2);
  Bat g3 = MilGroupRefine(q.s, g2, ng2, szr, &ng3);
  Bat g4 = MilGroupRefine(q.s, g3, ng3, skr, &ng4);
  Bat dreps = MilGroupReps(q.s, g4, ng4);
  Bat br_d = F(q, dreps, br);
  Bat ty_d = F(q, dreps, ty);
  Bat sz_d = F(q, dreps, szr);

  int64_t h1 = 0, h2 = 0, h3 = 0;
  Bat k1 = MilGroup(q.s, br_d, &h1);
  Bat k2 = MilGroupRefine(q.s, k1, h1, ty_d, &h2);
  Bat k3 = MilGroupRefine(q.s, k2, h2, sz_d, &h3);
  Bat cnt = MilCountGrouped(q.s, k3, h3);
  Bat kreps = MilGroupReps(q.s, k3, h3);
  Bat bv = F(q, kreps, br_d);
  Bat tv = F(q, kreps, ty_d);
  Bat sv = F(q, kreps, sz_d);
  Bat order =
      MilSortOids(q.s, {&cnt, &bv, &tv, &sv}, {true, false, false, false});
  return MakeResult("q16", {{"p_brand", &bv},
                            {"p_type", &tv},
                            {"p_size", &sv},
                            {"supplier_cnt", &cnt}},
                    &order);
}

// ------------------------------ Q17 ------------------------------------------
std::unique_ptr<Table> MQ17(Mq& q) {
  Bat pa =
      MilUSelect(q.s, q.B("part", "p_brand"), MilCmp::kEq, Value::Str("Brand#23"));
  Bat ct = F(q, pa, q.B("part", "p_container"));
  Bat pb = MilUSelect(q.s, ct, MilCmp::kEq, Value::Str("MED BOX"));
  Bat pkeys = F(q, F(q, pb, pa), q.B("part", "p_partkey"));

  Bat m = MilSemiJoin(q.s, q.B("lineitem", "l_partkey"), pkeys);
  Bat pk = F(q, m, q.B("lineitem", "l_partkey"));
  Bat qty = F(q, m, q.B("lineitem", "l_quantity"));
  Bat ext = F(q, m, q.B("lineitem", "l_extendedprice"));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, pk, &ng);
  Bat sums = MilSumGrouped(q.s, qty, g, ng);
  Bat cnts = MilCountGrouped(q.s, g, ng);
  Bat lim = MilMapVal(q.s, MilArith::kMul, Value::F64(0.2),
                      MilMap(q.s, MilArith::kDiv, sums, cnts));
  Bat row_lim = F(q, g, lim);
  Bat sel = MilUSelectColCol(q.s, qty, row_lim, MilCmp::kLt);
  double total = MilSum(q.s, F(q, sel, ext));
  return ScalarResult("q17", "avg_yearly", Value::F64(total / 7.0));
}

// ------------------------------ Q18 ------------------------------------------
std::unique_ptr<Table> MQ18(Mq& q) {
  const Bat& ok = q.B("lineitem", "l_orderkey");
  int64_t ng = 0;
  Bat g = MilGroup(q.s, ok, &ng);
  Bat sums = MilSumGrouped(q.s, q.B("lineitem", "l_quantity"), g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat okv = F(q, reps, ok);
  Bat w = MilUSelect(q.s, sums, MilCmp::kGt, Value::F64(300.0));
  Bat ok_big = F(q, w, okv);
  Bat sq = F(q, w, sums);
  Bat ooid = KeyOids(q, ok_big, 1);
  Bat ckey = F(q, ooid, q.B("orders", "o_custkey"));
  Bat tp = F(q, ooid, q.B("orders", "o_totalprice"));
  Bat od = F(q, ooid, q.B("orders", "o_orderdate"));
  Bat cname = F(q, KeyOids(q, ckey, 1), q.B("customer", "c_name"));
  Bat order = MilSortOids(q.s, {&tp, &od, &ok_big}, {true, false, false});
  return MakeResult("q18", {{"c_name", &cname},
                            {"c_custkey", &ckey},
                            {"o_orderkey", &ok_big},
                            {"o_orderdate", &od},
                            {"o_totalprice", &tp},
                            {"sum_qty", &sq}},
                    &order, 100);
}

// ------------------------------ Q19 ------------------------------------------
std::unique_ptr<Table> MQ19(Mq& q) {
  Bat ma =
      MilUSelect(q.s, q.B("lineitem", "l_shipmode"), MilCmp::kEq, Value::Str("AIR"));
  Bat mb = MilUSelect(q.s, q.B("lineitem", "l_shipmode"), MilCmp::kEq,
                      Value::Str("REG AIR"));
  Bat u = MilUnionOids(q.s, ma, mb);
  Bat instr = F(q, u, q.B("lineitem", "l_shipinstruct"));
  Bat i1 = MilUSelect(q.s, instr, MilCmp::kEq, Value::Str("DELIVER IN PERSON"));
  Bat rows = F(q, i1, u);

  Bat poid = KeyOids(q, F(q, rows, q.B("lineitem", "l_partkey")), 1);
  Bat brand = F(q, poid, q.B("part", "p_brand"));
  Bat cont = F(q, poid, q.B("part", "p_container"));
  Bat size = F(q, poid, q.B("part", "p_size"));
  Bat qty = F(q, rows, q.B("lineitem", "l_quantity"));

  auto grp = [&](const char* brand_name, std::vector<const char*> conts,
                 double qlo, double qhi, int smax) {
    Bat s1 = MilUSelect(q.s, brand, MilCmp::kEq, Value::Str(brand_name));
    Bat c1 = F(q, s1, cont);
    Bat cu(TypeId::kI64);
    bool first = true;
    for (const char* c : conts) {
      Bat m = MilUSelect(q.s, c1, MilCmp::kEq, Value::Str(c));
      if (first) {
        cu = std::move(m);
        first = false;
      } else {
        cu = MilUnionOids(q.s, cu, m);
      }
    }
    Bat s2 = F(q, cu, s1);
    Bat q2 = F(q, s2, qty);
    Bat s3sel = MilUSelectRange(q.s, q2, Value::F64(qlo), Value::F64(qhi));
    Bat s3 = F(q, s3sel, s2);
    Bat z = F(q, s3, size);
    Bat s4sel = MilUSelectRange(q.s, z, Value::I32(1), Value::I32(smax));
    return F(q, s4sel, s3);
  };
  Bat g1 = grp("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5);
  Bat g2 =
      grp("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10);
  Bat g3 = grp("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15);
  Bat all = MilUnionOids(q.s, MilUnionOids(q.s, g1, g2), g3);

  Bat rows_f = F(q, all, rows);
  Bat rev = MilMap(q.s, MilArith::kMul,
                   MilMapVal(q.s, MilArith::kSub, Value::F64(1.0),
                             F(q, rows_f, q.B("lineitem", "l_discount"))),
                   F(q, rows_f, q.B("lineitem", "l_extendedprice")));
  return ScalarResult("q19", "revenue", Value::F64(MilSum(q.s, rev)));
}

// ------------------------------ Q20 ------------------------------------------
std::unique_ptr<Table> MQ20(Mq& q) {
  Bat fp = MilUSelectLike(q.s, q.B("part", "p_name"), "forest%", false);
  Bat pkeys = F(q, fp, q.B("part", "p_partkey"));
  Bat s0 = MilUSelectRange(q.s, q.B("lineitem", "l_shipdate"), D("1994-01-01"),
                           Value::Date(ParseDate("1995-01-01") - 1));
  Bat m = MilSemiJoin(q.s, F(q, s0, q.B("lineitem", "l_partkey")), pkeys);
  Bat rows = F(q, m, s0);
  Bat pk = F(q, rows, q.B("lineitem", "l_partkey"));
  Bat sk = F(q, rows, q.B("lineitem", "l_suppkey"));
  Bat qty = F(q, rows, q.B("lineitem", "l_quantity"));
  Bat combo = ComboKey(pk, sk);
  int64_t ng = 0;
  Bat g = MilGroup(q.s, combo, &ng);
  Bat sums = MilSumGrouped(q.s, qty, g, ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat pk_r = F(q, reps, pk);
  Bat sk_r = F(q, reps, sk);

  Bat ps_combo =
      ComboKey(q.B("partsupp", "ps_partkey"), q.B("partsupp", "ps_suppkey"));
  MilJoinResult jr = MilJoin(q.s, ps_combo, ComboKey(pk_r, sk_r));
  Bat avail = F(q, jr.left_oids, q.B("partsupp", "ps_availqty"));
  Bat half =
      MilMapVal(q.s, MilArith::kMul, Value::F64(0.5), F(q, jr.right_oids, sums));
  Bat sel = MilUSelectColCol(q.s, avail, half, MilCmp::kGt);
  Bat sks =
      MilUnique(q.s, F(q, F(q, sel, jr.left_oids), q.B("partsupp", "ps_suppkey")));

  Bat nn =
      F(q, KeyOids(q, q.B("supplier", "s_nationkey"), 0), q.B("nation", "n_name"));
  Bat cs = MilUSelect(q.s, nn, MilCmp::kEq, Value::Str("CANADA"));
  Bat m2 = MilSemiJoin(q.s, F(q, cs, q.B("supplier", "s_suppkey")), sks);
  Bat fin = F(q, m2, cs);
  Bat sname = F(q, fin, q.B("supplier", "s_name"));
  Bat saddr = F(q, fin, q.B("supplier", "s_address"));
  Bat order = MilSortOids(q.s, {&sname}, {false});
  return MakeResult("q20", {{"s_name", &sname}, {"s_address", &saddr}}, &order);
}

// ------------------------------ Q21 ------------------------------------------
std::unique_ptr<Table> MQ21(Mq& q) {
  Bat late = MilUSelectColCol(q.s, q.B("lineitem", "l_receiptdate"),
                              q.B("lineitem", "l_commitdate"), MilCmp::kGt);
  Bat lok = F(q, late, q.B("lineitem", "l_orderkey"));
  Bat lsk = F(q, late, q.B("lineitem", "l_suppkey"));

  Bat combo_all =
      ComboKey(q.B("lineitem", "l_orderkey"), q.B("lineitem", "l_suppkey"));
  int64_t ng = 0;
  Bat g = MilGroup(q.s, combo_all, &ng);
  Bat reps = MilGroupReps(q.s, g, ng);
  Bat ok_d = F(q, reps, q.B("lineitem", "l_orderkey"));
  int64_t ng2 = 0;
  Bat g2 = MilGroup(q.s, ok_d, &ng2);
  Bat nsupp = MilCountGrouped(q.s, g2, ng2);
  Bat reps2 = MilGroupReps(q.s, g2, ng2);
  Bat ok_v = F(q, reps2, ok_d);
  Bat msel = MilUSelect(q.s, nsupp, MilCmp::kGe, Value::I64(2));
  Bat multi_ok = F(q, msel, ok_v);

  Bat combo_late = ComboKey(lok, lsk);
  int64_t ng3 = 0;
  Bat g3 = MilGroup(q.s, combo_late, &ng3);
  Bat reps3 = MilGroupReps(q.s, g3, ng3);
  Bat lok_d = F(q, reps3, lok);
  int64_t ng4 = 0;
  Bat g4 = MilGroup(q.s, lok_d, &ng4);
  Bat nlate = MilCountGrouped(q.s, g4, ng4);
  Bat reps4 = MilGroupReps(q.s, g4, ng4);
  Bat lok_v = F(q, reps4, lok_d);
  Bat ssel = MilUSelect(q.s, nlate, MilCmp::kEq, Value::I64(1));
  Bat single_ok = F(q, ssel, lok_v);

  Bat nn =
      F(q, KeyOids(q, q.B("supplier", "s_nationkey"), 0), q.B("nation", "n_name"));
  Bat ss = MilUSelect(q.s, nn, MilCmp::kEq, Value::Str("SAUDI ARABIA"));
  Bat saudi_keys = F(q, ss, q.B("supplier", "s_suppkey"));

  Bat fsel = MilUSelect(q.s, q.B("orders", "o_orderstatus"), MilCmp::kEq,
                        Value::I64('F'));
  Bat fok = F(q, fsel, q.B("orders", "o_orderkey"));

  Bat p1 = MilSemiJoin(q.s, lsk, saudi_keys);
  Bat ok1 = F(q, p1, lok);
  Bat sk1 = F(q, p1, lsk);
  Bat p2 = MilSemiJoin(q.s, ok1, fok);
  Bat ok2 = F(q, p2, ok1);
  Bat sk2 = F(q, p2, sk1);
  Bat p3 = MilSemiJoin(q.s, ok2, multi_ok);
  Bat ok3 = F(q, p3, ok2);
  Bat sk3 = F(q, p3, sk2);
  Bat p4 = MilSemiJoin(q.s, ok3, single_ok);
  Bat sk4 = F(q, p4, sk3);

  Bat sname = F(q, KeyOids(q, sk4, 1), q.B("supplier", "s_name"));
  int64_t ng5 = 0;
  Bat g5 = MilGroup(q.s, sname, &ng5);
  Bat cnt = MilCountGrouped(q.s, g5, ng5);
  Bat reps5 = MilGroupReps(q.s, g5, ng5);
  Bat sv = F(q, reps5, sname);
  Bat order = MilSortOids(q.s, {&cnt, &sv}, {true, false});
  return MakeResult("q21", {{"s_name", &sv}, {"numwait", &cnt}}, &order, 100);
}

// ------------------------------ Q22 ------------------------------------------
std::unique_ptr<Table> MQ22(Mq& q) {
  const std::vector<std::string> codes = {"13", "17", "18", "23",
                                          "29", "30", "31"};
  Bat cset(TypeId::kI64);
  for (size_t i = 0; i < codes.size(); i++) {
    Bat m = MilUSelectLike(q.s, q.B("customer", "c_phone"), codes[i] + "%", false);
    if (i == 0) {
      cset = std::move(m);
    } else {
      cset = MilUnionOids(q.s, cset, m);
    }
  }
  Bat acct = F(q, cset, q.B("customer", "c_acctbal"));
  Bat pos = MilUSelect(q.s, acct, MilCmp::kGt, Value::F64(0.0));
  Bat pacct = F(q, pos, acct);
  double avg = MilSum(q.s, pacct) /
               std::max<double>(1.0, static_cast<double>(pacct.size()));
  Bat c2 = MilUSelect(q.s, acct, MilCmp::kGt, Value::F64(avg));
  Bat rows = F(q, c2, cset);
  Bat acct2 = F(q, c2, acct);
  Bat ckeys = F(q, rows, q.B("customer", "c_custkey"));
  Bat no_ord = MilAntiJoin(q.s, ckeys, q.B("orders", "o_custkey"));
  Bat phone = F(q, no_ord, F(q, rows, q.B("customer", "c_phone")));
  Bat acct3 = F(q, no_ord, acct2);

  auto out = std::make_unique<Table>(
      "q22", std::vector<Table::ColumnSpec>{{"cntrycode", TypeId::kStr, false},
                                            {"numcust", TypeId::kI64, false},
                                            {"totacctbal", TypeId::kF64, false}});
  for (const std::string& code : codes) {
    Bat m = MilUSelectLike(q.s, phone, code + "%", false);
    if (m.size() == 0) continue;
    double total = MilSum(q.s, F(q, m, acct3));
    out->AppendRow({Value::Str(code), Value::I64(m.size()), Value::F64(total)});
  }
  out->Freeze();
  return out;
}

}  // namespace

std::unique_ptr<Table> RunMilQuery(int query, MilSession* session,
                                   MilDatabase* db) {
  Mq q{session, db};
  switch (query) {
    case 1:  return MQ1(q);
    case 2:  return MQ2(q);
    case 3:  return MQ3(q);
    case 4:  return MQ4(q);
    case 5:  return MQ5(q);
    case 6:  return MQ6(q);
    case 7:  return MQ7(q);
    case 8:  return MQ8(q);
    case 9:  return MQ9(q);
    case 10: return MQ10(q);
    case 11: return MQ11(q);
    case 12: return MQ12(q);
    case 13: return MQ13(q);
    case 14: return MQ14(q);
    case 15: return MQ15(q);
    case 16: return MQ16(q);
    case 17: return MQ17(q);
    case 18: return MQ18(q);
    case 19: return MQ19(q);
    case 20: return MQ20(q);
    case 21: return MQ21(q);
    case 22: return MQ22(q);
    default:
      X100_CHECK(false);
      return nullptr;
  }
}

}  // namespace x100
