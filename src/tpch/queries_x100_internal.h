#ifndef X100_TPCH_QUERIES_X100_INTERNAL_H_
#define X100_TPCH_QUERIES_X100_INTERNAL_H_

// Internal: per-query X100 plan functions + shared plan helpers.
// Include only from tpch/queries_x100_*.cc.

#include <memory>

#include "exec/plan.h"
#include "storage/catalog.h"

namespace x100::tpch_x100 {

using TablePtr = std::unique_ptr<Table>;

#define X100_DECLARE_Q(n) TablePtr Q##n(ExecContext* ctx, const Catalog& db)
X100_DECLARE_Q(1);  X100_DECLARE_Q(2);  X100_DECLARE_Q(3);  X100_DECLARE_Q(4);
X100_DECLARE_Q(5);  X100_DECLARE_Q(6);  X100_DECLARE_Q(7);  X100_DECLARE_Q(8);
X100_DECLARE_Q(9);  X100_DECLARE_Q(10); X100_DECLARE_Q(11); X100_DECLARE_Q(12);
X100_DECLARE_Q(13); X100_DECLARE_Q(14); X100_DECLARE_Q(15); X100_DECLARE_Q(16);
X100_DECLARE_Q(17); X100_DECLARE_Q(18); X100_DECLARE_Q(19); X100_DECLARE_Q(20);
X100_DECLARE_Q(21); X100_DECLARE_Q(22);
#undef X100_DECLARE_Q

/// Move-only-friendly vector builders (NamedExpr / AggrSpec hold ExprPtr).
template <typename... Ts>
std::vector<NamedExpr> NE(Ts&&... ts) {
  std::vector<NamedExpr> v;
  v.reserve(sizeof...(ts));
  (v.push_back(std::move(ts)), ...);
  return v;
}

template <typename... Ts>
std::vector<AggrSpec> AG(Ts&&... ts) {
  std::vector<AggrSpec> v;
  v.reserve(sizeof...(ts));
  (v.push_back(std::move(ts)), ...);
  return v;
}

/// revenue term: l_extendedprice * (1 - l_discount).
inline ExprPtr Rev() {
  return exprs::Mul(exprs::Sub(LitF64(1.0), Col("l_discount")),
                    Col("l_extendedprice"));
}

inline double ScalarF64(const Table& t, const char* col) {
  X100_CHECK(t.num_rows() >= 1);
  return t.GetValue(0, t.ColumnIndex(col)).AsF64();
}
inline int64_t ScalarI64(const Table& t, const char* col) {
  X100_CHECK(t.num_rows() >= 1);
  return t.GetValue(0, t.ColumnIndex(col)).AsI64();
}

}  // namespace x100::tpch_x100

#endif  // X100_TPCH_QUERIES_X100_INTERNAL_H_
