// Hand-translated X100 algebra plans for TPC-H Q12-Q22 + the dispatcher.

#include "common/date.h"
#include "tpch/queries.h"
#include "tpch/queries_x100_internal.h"

namespace x100::tpch_x100 {

using namespace x100::exprs;
using namespace x100::plan;

namespace {
const std::string kJiOrders = Table::JoinIndexName("orders");
const std::string kJiPart = Table::JoinIndexName("part");
const std::string kJiSupplier = Table::JoinIndexName("supplier");
const std::string kJiCustomer = Table::JoinIndexName("customer");
const std::string kJiNation = Table::JoinIndexName("nation");
}  // namespace

// ---- Q12: shipping modes and order priority ---------------------------------
TablePtr Q12(ExecContext* ctx, const Catalog& db) {
  double lo = ParseDate("1994-01-01"), hi = ParseDate("1995-01-01") - 1;
  auto li = Scan(ctx, db.Get("lineitem"),
                 {.cols = {"l_shipmode", "l_shipdate", "l_commitdate",
                           "l_receiptdate", kJiOrders},
                  .range = ScanSpec::Range{"l_receiptdate", lo, hi}});
  li = Select(
      ctx, std::move(li),
      And(In(Col("l_shipmode"),
             {Value::Str("MAIL"), Value::Str("SHIP")}),
          And(Lt(Col("l_commitdate"), Col("l_receiptdate")),
              And(Lt(Col("l_shipdate"), Col("l_commitdate")),
                  And(Ge(Col("l_receiptdate"), LitDate("1994-01-01")),
                      Lt(Col("l_receiptdate"), LitDate("1995-01-01")))))));
  li = Fetch1Join(ctx, std::move(li), db.Get("orders"), kJiOrders,
                  {{"o_orderpriority", "o_orderpriority"}});
  TablePtr base = RunPlan(
      Project(ctx, std::move(li),
              NE(Pass("l_shipmode"), Pass("o_orderpriority"))),
      "q12_base");

  auto tot = HashAggr(ctx, Scan(ctx, *base, {"l_shipmode"}), {"l_shipmode"},
                      AG(CountAll("total")));
  auto high = Select(ctx, Scan(ctx, *base, {"l_shipmode", "o_orderpriority"}),
                     In(Col("o_orderpriority"),
                        {Value::Str("1-URGENT"), Value::Str("2-HIGH")}));
  high = HashAggr(ctx, std::move(high), {"l_shipmode"},
                  AG(CountAll("high_line_count")));
  auto fin = Join(ctx, std::move(tot), std::move(high),
                  {.probe_keys = {"l_shipmode"},
                   .build_keys = {"l_shipmode"},
                   .probe_out = {"l_shipmode", "total"},
                   .build_out = {"high_line_count"},
                   .type = JoinType::kLeftOuterDefault});
  fin = Project(ctx, std::move(fin),
                NE(Pass("l_shipmode"), Pass("high_line_count"),
                   As("low_line_count",
                      Sub(Col("total"), Col("high_line_count")))));
  fin = Order(ctx, std::move(fin), {Asc("l_shipmode")});
  return RunPlan(std::move(fin), "q12");
}

// ---- Q13: customer order-count distribution ----------------------------------
TablePtr Q13(ExecContext* ctx, const Catalog& db) {
  auto ord = Scan(ctx, db.Get("orders"), {"o_custkey", "o_comment"});
  ord = Select(ctx, std::move(ord),
               NotLike(Col("o_comment"), "%special%requests%"));
  ord = HashAggr(ctx, std::move(ord), {"o_custkey"}, AG(CountAll("c_count")));

  auto cust = Scan(ctx, db.Get("customer"), {"c_custkey"});
  auto j = Join(ctx, std::move(cust), std::move(ord),
                {.probe_keys = {"c_custkey"},
                 .build_keys = {"o_custkey"},
                 .probe_out = {"c_custkey"},
                 .build_out = {"c_count"},
                 .type = JoinType::kLeftOuterDefault});
  j = HashAggr(ctx, std::move(j), {"c_count"}, AG(CountAll("custdist")));
  j = Order(ctx, std::move(j), {Desc("custdist"), Desc("c_count")});
  return RunPlan(std::move(j), "q13");
}

// ---- Q14: promotion effect -----------------------------------------------------
TablePtr Q14(ExecContext* ctx, const Catalog& db) {
  double lo = ParseDate("1995-09-01"), hi = ParseDate("1995-10-01") - 1;
  auto li = Scan(ctx, db.Get("lineitem"),
                 {.cols = {"l_shipdate", "l_extendedprice", "l_discount",
                           kJiPart},
                  .range = ScanSpec::Range{"l_shipdate", lo, hi}});
  li = Select(ctx, std::move(li),
              And(Ge(Col("l_shipdate"), LitDate("1995-09-01")),
                  Lt(Col("l_shipdate"), LitDate("1995-10-01"))));
  li = Fetch1Join(ctx, std::move(li), db.Get("part"), kJiPart,
                  {{"p_type", "p_type"}});
  TablePtr base = RunPlan(
      Project(ctx, std::move(li), NE(Pass("p_type"), As("rev", Rev()))),
      "q14_base");

  TablePtr allt =
      RunPlan(HashAggr(ctx, Scan(ctx, *base, {"rev"}), {},
                       AG(Sum("total", Col("rev")))),
              "q14_all");
  TablePtr promo = RunPlan(
      HashAggr(ctx,
               Select(ctx, Scan(ctx, *base, {"p_type", "rev"}),
                      Like(Col("p_type"), "PROMO%")),
               {}, AG(Sum("promo", Col("rev")))),
      "q14_promo");

  auto fin = CartProd(ctx, Scan(ctx, *promo, {"promo"}),
                      Scan(ctx, *allt, {"total"}), {"promo"}, {"total"});
  fin = Project(ctx, std::move(fin),
                NE(As("promo_revenue",
                      Div(Mul(LitF64(100.0), Col("promo")), Col("total")))));
  return RunPlan(std::move(fin), "q14");
}

// ---- Q15: top supplier ----------------------------------------------------------
TablePtr Q15(ExecContext* ctx, const Catalog& db) {
  double lo = ParseDate("1996-01-01"), hi = ParseDate("1996-04-01") - 1;
  auto li = Scan(ctx, db.Get("lineitem"),
                 {.cols = {"l_suppkey", "l_shipdate", "l_extendedprice",
                           "l_discount"},
                  .range = ScanSpec::Range{"l_shipdate", lo, hi}});
  li = Select(ctx, std::move(li),
              And(Ge(Col("l_shipdate"), LitDate("1996-01-01")),
                  Lt(Col("l_shipdate"), LitDate("1996-04-01"))));
  li = Project(ctx, std::move(li), NE(Pass("l_suppkey"), As("rev", Rev())));
  li = HashAggr(ctx, std::move(li), {"l_suppkey"},
                AG(Sum("total_revenue", Col("rev"))));
  TablePtr revenue = RunPlan(std::move(li), "q15_revenue");

  TablePtr maxt =
      RunPlan(HashAggr(ctx, Scan(ctx, *revenue, {"total_revenue"}), {},
                       AG(Max("max_rev", Col("total_revenue")))),
              "q15_max");
  double maxrev = ScalarF64(*maxt, "max_rev");

  auto win = Select(ctx, Scan(ctx, *revenue, {"l_suppkey", "total_revenue"}),
                    Eq(Col("total_revenue"), LitF64(maxrev)));
  win = Join(ctx, std::move(win),
             Scan(ctx, db.Get("supplier"),
                  {"s_suppkey", "s_name", "s_address", "s_phone"}),
             {.probe_keys = {"l_suppkey"},
              .build_keys = {"s_suppkey"},
              .probe_out = {"total_revenue"},
              .build_out = {"s_suppkey", "s_name", "s_address", "s_phone"}});
  win = Project(ctx, std::move(win),
                NE(Pass("s_suppkey"), Pass("s_name"), Pass("s_address"),
                   Pass("s_phone"), Pass("total_revenue")));
  win = Order(ctx, std::move(win), {Asc("s_suppkey")});
  return RunPlan(std::move(win), "q15");
}

// ---- Q16: parts/supplier relationship --------------------------------------------
TablePtr Q16(ExecContext* ctx, const Catalog& db) {
  auto p = Scan(ctx, db.Get("part"),
                {"p_partkey", "p_brand", "p_type", "p_size"});
  p = Select(
      ctx, std::move(p),
      And(Ne(Col("p_brand"), LitStr("Brand#45")),
          And(NotLike(Col("p_type"), "MEDIUM POLISHED%"),
              In(Col("p_size"),
                 {Value::I32(49), Value::I32(14), Value::I32(23),
                  Value::I32(45), Value::I32(19), Value::I32(3),
                  Value::I32(36), Value::I32(9)}))));

  auto bad = Scan(ctx, db.Get("supplier"), {"s_suppkey", "s_comment"});
  bad = Select(ctx, std::move(bad),
               Like(Col("s_comment"), "%Customer%Complaints%"));
  bad = Project(ctx, std::move(bad), NE(Pass("s_suppkey")));

  auto ps = Scan(ctx, db.Get("partsupp"), {"ps_partkey", "ps_suppkey"});
  ps = AntiJoin(ctx, std::move(ps), std::move(bad),
                {.probe_keys = {"ps_suppkey"},
                 .build_keys = {"s_suppkey"},
                 .probe_out = {"ps_partkey", "ps_suppkey"}});
  ps = Join(ctx, std::move(ps), std::move(p),
            {.probe_keys = {"ps_partkey"},
             .build_keys = {"p_partkey"},
             .probe_out = {"ps_suppkey"},
             .build_out = {"p_brand", "p_type", "p_size"}});
  // count(distinct ps_suppkey): distinct first, then count.
  ps = HashAggr(ctx, std::move(ps),
                {"p_brand", "p_type", "p_size", "ps_suppkey"}, {});
  ps = HashAggr(ctx, std::move(ps), {"p_brand", "p_type", "p_size"},
                AG(CountAll("supplier_cnt")));
  ps = Order(ctx, std::move(ps),
             {Desc("supplier_cnt"), Asc("p_brand"), Asc("p_type"),
              Asc("p_size")});
  return RunPlan(std::move(ps), "q16");
}

// ---- Q17: small-quantity-order revenue ----------------------------------------------
TablePtr Q17(ExecContext* ctx, const Catalog& db) {
  auto p = Scan(ctx, db.Get("part"), {"p_partkey", "p_brand", "p_container"});
  p = Select(ctx, std::move(p),
             And(Eq(Col("p_brand"), LitStr("Brand#23")),
                 Eq(Col("p_container"), LitStr("MED BOX"))));
  p = Project(ctx, std::move(p), NE(Pass("p_partkey")));
  TablePtr pmat = RunPlan(std::move(p), "q17_parts");

  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_partkey", "l_quantity", "l_extendedprice"});
  li = Join(ctx, std::move(li), Scan(ctx, *pmat, {"p_partkey"}),
            {.probe_keys = {"l_partkey"},
             .build_keys = {"p_partkey"},
             .probe_out = {"l_partkey", "l_quantity", "l_extendedprice"}});
  TablePtr t = RunPlan(std::move(li), "q17_li");

  auto a = HashAggr(ctx, Scan(ctx, *t, {"l_partkey", "l_quantity"}),
                    {"l_partkey"},
                    AG(Sum("qty_sum", Col("l_quantity")), CountAll("qty_cnt")));
  a = Project(ctx, std::move(a),
              NE(As("pk", Col("l_partkey")),
                 As("lim", Mul(LitF64(0.2),
                               Div(Col("qty_sum"),
                                   Call1("dbl", Col("qty_cnt")))))));
  TablePtr amat = RunPlan(std::move(a), "q17_avg");

  auto j = Join(ctx,
                Scan(ctx, *t, {"l_partkey", "l_quantity", "l_extendedprice"}),
                Scan(ctx, *amat, {"pk", "lim"}),
                {.probe_keys = {"l_partkey"},
                 .build_keys = {"pk"},
                 .probe_out = {"l_quantity", "l_extendedprice"},
                 .build_out = {"lim"}});
  j = Select(ctx, std::move(j), Lt(Col("l_quantity"), Col("lim")));
  j = HashAggr(ctx, std::move(j), {},
               AG(Sum("sum_price", Col("l_extendedprice"))));
  j = Project(ctx, std::move(j),
              NE(As("avg_yearly", Div(Col("sum_price"), LitF64(7.0)))));
  return RunPlan(std::move(j), "q17");
}

// ---- Q18: large-volume customers ------------------------------------------------------
TablePtr Q18(ExecContext* ctx, const Catalog& db) {
  // lineitem is clustered on l_orderkey (generated with its order), so the
  // per-order sum can stream through ordered aggregation (§4.1.2).
  auto big = OrdAggr(ctx,
                     Scan(ctx, db.Get("lineitem"),
                          {"l_orderkey", "l_quantity"}),
                     {"l_orderkey"}, AG(Sum("sum_qty", Col("l_quantity"))));
  big = Select(ctx, std::move(big), Gt(Col("sum_qty"), LitF64(300.0)));
  TablePtr bigt = RunPlan(std::move(big), "q18_big");

  auto o = Scan(ctx, db.Get("orders"),
                {"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate",
                 kJiCustomer});
  o = Fetch1Join(ctx, std::move(o), db.Get("customer"), kJiCustomer,
                 {{"c_name", "c_name"}});
  o = Join(ctx, std::move(o), Scan(ctx, *bigt, {"l_orderkey", "sum_qty"}),
           {.probe_keys = {"o_orderkey"},
            .build_keys = {"l_orderkey"},
            .probe_out = {"c_name", "o_custkey", "o_orderkey", "o_orderdate",
                          "o_totalprice"},
            .build_out = {"sum_qty"}});
  o = Project(ctx, std::move(o),
              NE(Pass("c_name"), As("c_custkey", Col("o_custkey")),
                 Pass("o_orderkey"), Pass("o_orderdate"), Pass("o_totalprice"),
                 Pass("sum_qty")));
  o = TopN(ctx, std::move(o),
           {Desc("o_totalprice"), Asc("o_orderdate"), Asc("o_orderkey")}, 100);
  return RunPlan(std::move(o), "q18");
}

// ---- Q19: discounted revenue (disjunctive predicate) -----------------------------------
TablePtr Q19(ExecContext* ctx, const Catalog& db) {
  auto li = Scan(ctx, db.Get("lineitem"),
                 {"l_quantity", "l_extendedprice", "l_discount",
                  "l_shipinstruct", "l_shipmode", kJiPart});
  li = Select(ctx, std::move(li),
              And(In(Col("l_shipmode"),
                     {Value::Str("AIR"), Value::Str("REG AIR")}),
                  Eq(Col("l_shipinstruct"), LitStr("DELIVER IN PERSON"))));
  li = Fetch1Join(ctx, std::move(li), db.Get("part"), kJiPart,
                  {{"p_brand", "p_brand"},
                   {"p_container", "p_container"},
                   {"p_size", "p_size"}});
  auto group = [&](const char* brand, std::vector<Value> containers, double qlo,
                   double qhi, int32_t smax) {
    return And(Eq(Col("p_brand"), LitStr(brand)),
               And(In(Col("p_container"), std::move(containers)),
                   And(Between(Col("l_quantity"), LitF64(qlo), LitF64(qhi)),
                       Between(Col("p_size"), LitI32(1), LitI32(smax)))));
  };
  li = Select(
      ctx, std::move(li),
      Or(group("Brand#12",
               {Value::Str("SM CASE"), Value::Str("SM BOX"),
                Value::Str("SM PACK"), Value::Str("SM PKG")},
               1, 11, 5),
         Or(group("Brand#23",
                  {Value::Str("MED BAG"), Value::Str("MED BOX"),
                   Value::Str("MED PKG"), Value::Str("MED PACK")},
                  10, 20, 10),
            group("Brand#34",
                  {Value::Str("LG CASE"), Value::Str("LG BOX"),
                   Value::Str("LG PACK"), Value::Str("LG PKG")},
                  20, 30, 15))));
  li = HashAggr(ctx, std::move(li), {}, AG(Sum("revenue", Rev())));
  return RunPlan(std::move(li), "q19");
}

// ---- Q20: potential part promotion -------------------------------------------------------
TablePtr Q20(ExecContext* ctx, const Catalog& db) {
  auto forest = Scan(ctx, db.Get("part"), {"p_partkey", "p_name"});
  forest = Select(ctx, std::move(forest), Like(Col("p_name"), "forest%"));
  forest = Project(ctx, std::move(forest), NE(Pass("p_partkey")));
  TablePtr fmat = RunPlan(std::move(forest), "q20_forest");

  double lo = ParseDate("1994-01-01"), hi = ParseDate("1995-01-01") - 1;
  auto li = Scan(ctx, db.Get("lineitem"),
                 {.cols = {"l_partkey", "l_suppkey", "l_quantity",
                           "l_shipdate"},
                  .range = ScanSpec::Range{"l_shipdate", lo, hi}});
  li = Select(ctx, std::move(li),
              And(Ge(Col("l_shipdate"), LitDate("1994-01-01")),
                  Lt(Col("l_shipdate"), LitDate("1995-01-01"))));
  li = Join(ctx, std::move(li), Scan(ctx, *fmat, {"p_partkey"}),
            {.probe_keys = {"l_partkey"},
             .build_keys = {"p_partkey"},
             .probe_out = {"l_partkey", "l_suppkey", "l_quantity"}});
  li = HashAggr(ctx, std::move(li), {"l_partkey", "l_suppkey"},
                AG(Sum("sum_qty", Col("l_quantity"))));
  TablePtr sq = RunPlan(std::move(li), "q20_sq");

  auto ps = Scan(ctx, db.Get("partsupp"),
                 {"ps_partkey", "ps_suppkey", "ps_availqty"});
  ps = Join(ctx, std::move(ps),
            Scan(ctx, *sq, {"l_partkey", "l_suppkey", "sum_qty"}),
            {.probe_keys = {"ps_partkey", "ps_suppkey"},
             .build_keys = {"l_partkey", "l_suppkey"},
             .probe_out = {"ps_suppkey", "ps_availqty"},
             .build_out = {"sum_qty"}});
  ps = Select(ctx, std::move(ps),
              Gt(Col("ps_availqty"), Mul(LitF64(0.5), Col("sum_qty"))));
  ps = HashAggr(ctx, std::move(ps), {"ps_suppkey"}, {});
  TablePtr sk = RunPlan(std::move(ps), "q20_sk");

  auto s = Scan(ctx, db.Get("supplier"),
                {"s_suppkey", "s_name", "s_address", kJiNation});
  s = Fetch1Join(ctx, std::move(s), db.Get("nation"), kJiNation,
                 {{"n_name", "n_name"}});
  s = Select(ctx, std::move(s), Eq(Col("n_name"), LitStr("CANADA")));
  s = SemiJoin(ctx, std::move(s), Scan(ctx, *sk, {"ps_suppkey"}),
               {.probe_keys = {"s_suppkey"},
                .build_keys = {"ps_suppkey"},
                .probe_out = {"s_name", "s_address"}});
  s = Order(ctx, std::move(s), {Asc("s_name")});
  return RunPlan(std::move(s), "q20");
}

// ---- Q21: suppliers who kept orders waiting -------------------------------------------------
TablePtr Q21(ExecContext* ctx, const Catalog& db) {
  // Orders with >= 2 distinct suppliers.
  auto multi = HashAggr(ctx,
                        Scan(ctx, db.Get("lineitem"),
                             {"l_orderkey", "l_suppkey"}),
                        {"l_orderkey", "l_suppkey"}, {});
  multi = HashAggr(ctx, std::move(multi), {"l_orderkey"},
                   AG(CountAll("nsupp")));
  multi = Select(ctx, std::move(multi), Ge(Col("nsupp"), LitI64(2)));
  TablePtr multit = RunPlan(
      Project(ctx, std::move(multi), NE(Pass("l_orderkey"))), "q21_multi");

  // Late lineitems.
  auto late = Scan(ctx, db.Get("lineitem"),
                   {"l_orderkey", "l_suppkey", "l_commitdate",
                    "l_receiptdate"});
  late = Select(ctx, std::move(late),
                Gt(Col("l_receiptdate"), Col("l_commitdate")));
  TablePtr latet = RunPlan(
      Project(ctx, std::move(late), NE(Pass("l_orderkey"), Pass("l_suppkey"))),
      "q21_late");

  // Orders whose late lineitems involve exactly one supplier.
  auto single = HashAggr(ctx, Scan(ctx, *latet, {"l_orderkey", "l_suppkey"}),
                         {"l_orderkey", "l_suppkey"}, {});
  single = HashAggr(ctx, std::move(single), {"l_orderkey"},
                    AG(CountAll("nlate")));
  single = Select(ctx, std::move(single), Eq(Col("nlate"), LitI64(1)));
  TablePtr singlet = RunPlan(
      Project(ctx, std::move(single), NE(Pass("l_orderkey"))), "q21_single");

  // Saudi suppliers.
  auto s = Scan(ctx, db.Get("supplier"), {"s_suppkey", "s_name", kJiNation});
  s = Fetch1Join(ctx, std::move(s), db.Get("nation"), kJiNation,
                 {{"n_name", "n_name"}});
  s = Select(ctx, std::move(s), Eq(Col("n_name"), LitStr("SAUDI ARABIA")));
  TablePtr saudit = RunPlan(
      Project(ctx, std::move(s), NE(Pass("s_suppkey"), Pass("s_name"))),
      "q21_saudi");

  // F orders.
  auto fo = Scan(ctx, db.Get("orders"), {"o_orderkey", "o_orderstatus"});
  fo = Select(ctx, std::move(fo), Eq(Col("o_orderstatus"), LitChar('F')));
  fo = Project(ctx, std::move(fo), NE(Pass("o_orderkey")));

  auto l1 = Join(ctx, Scan(ctx, *latet, {"l_orderkey", "l_suppkey"}),
                 Scan(ctx, *saudit, {"s_suppkey", "s_name"}),
                 {.probe_keys = {"l_suppkey"},
                  .build_keys = {"s_suppkey"},
                  .probe_out = {"l_orderkey"},
                  .build_out = {"s_name"}});
  l1 = SemiJoin(ctx, std::move(l1), std::move(fo),
                {.probe_keys = {"l_orderkey"},
                 .build_keys = {"o_orderkey"},
                 .probe_out = {"l_orderkey", "s_name"}});
  l1 = SemiJoin(ctx, std::move(l1), Scan(ctx, *multit, {"l_orderkey"}),
                {.probe_keys = {"l_orderkey"},
                 .build_keys = {"l_orderkey"},
                 .probe_out = {"l_orderkey", "s_name"}});
  l1 = SemiJoin(ctx, std::move(l1), Scan(ctx, *singlet, {"l_orderkey"}),
                {.probe_keys = {"l_orderkey"},
                 .build_keys = {"l_orderkey"},
                 .probe_out = {"s_name"}});
  l1 = HashAggr(ctx, std::move(l1), {"s_name"}, AG(CountAll("numwait")));
  l1 = TopN(ctx, std::move(l1), {Desc("numwait"), Asc("s_name")}, 100);
  return RunPlan(std::move(l1), "q21");
}

// ---- Q22: global sales opportunity -----------------------------------------------------------
TablePtr Q22(ExecContext* ctx, const Catalog& db) {
  const std::vector<std::string> codes = {"13", "17", "18", "23",
                                          "29", "30", "31"};
  auto cc_pred = [&]() {
    ExprPtr p = Like(Col("c_phone"), codes[0] + "%");
    for (size_t i = 1; i < codes.size(); i++) {
      p = Or(std::move(p), Like(Col("c_phone"), codes[i] + "%"));
    }
    return p;
  };

  auto c = Scan(ctx, db.Get("customer"), {"c_custkey", "c_phone", "c_acctbal"});
  c = Select(ctx, std::move(c), cc_pred());
  TablePtr cset = RunPlan(std::move(c), "q22_cset");

  // Average positive balance over the code set.
  auto avg = Select(ctx, Scan(ctx, *cset, {"c_acctbal"}),
                    Gt(Col("c_acctbal"), LitF64(0.0)));
  avg = HashAggr(ctx, std::move(avg), {},
                 AG(Sum("s", Col("c_acctbal")), CountAll("n")));
  TablePtr avgt = RunPlan(std::move(avg), "q22_avg");
  double avgbal = ScalarF64(*avgt, "s") /
                  std::max<double>(1.0, static_cast<double>(
                                            ScalarI64(*avgt, "n")));

  TablePtr c2t = RunPlan(
      Select(ctx, Scan(ctx, *cset, {"c_custkey", "c_phone", "c_acctbal"}),
             Gt(Col("c_acctbal"), LitF64(avgbal))),
      "q22_c2");
  // NOT EXISTS(orders): stream the big orders side as semi-join probe
  // against the (small) candidate customers, take the distinct customers
  // that do have orders, and anti-join the candidates against that set —
  // both hash builds stay small.
  auto have = SemiJoin(ctx, Scan(ctx, db.Get("orders"), {"o_custkey"}),
                       Scan(ctx, *c2t, {"c_custkey"}),
                       {.probe_keys = {"o_custkey"},
                        .build_keys = {"c_custkey"},
                        .probe_out = {"o_custkey"}});
  have = HashAggr(ctx, std::move(have), {"o_custkey"}, {});
  auto fin_op = AntiJoin(ctx,
                         Scan(ctx, *c2t, {"c_custkey", "c_phone", "c_acctbal"}),
                         std::move(have),
                         {.probe_keys = {"c_custkey"},
                          .build_keys = {"o_custkey"},
                          .probe_out = {"c_phone", "c_acctbal"}});
  TablePtr fin = RunPlan(std::move(fin_op), "q22_fin");

  // Per-country-code aggregation, assembled in code order.
  auto out = std::make_unique<Table>(
      "q22", std::vector<Table::ColumnSpec>{{"cntrycode", TypeId::kStr, false},
                                            {"numcust", TypeId::kI64, false},
                                            {"totacctbal", TypeId::kF64, false}});
  for (const std::string& code : codes) {
    auto g = Select(ctx, Scan(ctx, *fin, {"c_phone", "c_acctbal"}),
                    Like(Col("c_phone"), code + "%"));
    g = HashAggr(ctx, std::move(g), {},
                 AG(CountAll("numcust"), Sum("total", Col("c_acctbal"))));
    TablePtr gt = RunPlan(std::move(g), "q22_g");
    int64_t n = ScalarI64(*gt, "numcust");
    if (n == 0) continue;
    out->AppendRow({Value::Str(code), Value::I64(n),
                    Value::F64(ScalarF64(*gt, "total"))});
  }
  out->Freeze();
  return out;
}

}  // namespace x100::tpch_x100

namespace x100 {

std::unique_ptr<Table> RunX100Query(int q, ExecContext* ctx, const Catalog& db) {
  using namespace tpch_x100;
  switch (q) {
    case 1:  return Q1(ctx, db);
    case 2:  return Q2(ctx, db);
    case 3:  return Q3(ctx, db);
    case 4:  return Q4(ctx, db);
    case 5:  return Q5(ctx, db);
    case 6:  return Q6(ctx, db);
    case 7:  return Q7(ctx, db);
    case 8:  return Q8(ctx, db);
    case 9:  return Q9(ctx, db);
    case 10: return Q10(ctx, db);
    case 11: return Q11(ctx, db);
    case 12: return Q12(ctx, db);
    case 13: return Q13(ctx, db);
    case 14: return Q14(ctx, db);
    case 15: return Q15(ctx, db);
    case 16: return Q16(ctx, db);
    case 17: return Q17(ctx, db);
    case 18: return Q18(ctx, db);
    case 19: return Q19(ctx, db);
    case 20: return Q20(ctx, db);
    case 21: return Q21(ctx, db);
    case 22: return Q22(ctx, db);
    default:
      X100_CHECK(false);
      return nullptr;
  }
}

}  // namespace x100
