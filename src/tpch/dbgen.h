#ifndef X100_TPCH_DBGEN_H_
#define X100_TPCH_DBGEN_H_

#include <memory>

#include "storage/catalog.h"

namespace x100 {

/// TPC-H database generator (dbgen equivalent).
///
/// Faithful to the spec's schema, key formulas (4 suppliers per part, the
/// dbgen ps_suppkey permutation, customers ∤ 3 having no orders), value
/// domains and date arithmetic. Deterministic: every column draws from a
/// counter-based stream keyed on (table, column), so runs are bit-identical.
///
/// Two deliberate deviations, documented in DESIGN.md:
///  * orders are generated sorted on o_orderdate with lineitem clustered
///    along (the paper's §5 physical design), so the summary indices on the
///    date columns prune ranges;
///  * text columns come from a compact lexicon that preserves the LIKE-
///    pattern selectivities the queries probe (%special%requests%, PROMO%,
///    forest%, %Customer%Complaints%, ...), not dbgen's full grammar.
///
/// Low-cardinality columns use enumeration storage (§4.3): l_quantity,
/// l_discount, l_tax, l_shipinstruct, l_shipmode, o_orderpriority,
/// c_mktsegment, p_mfgr, p_brand, p_type, p_container, n_name, r_name.
struct DbgenOptions {
  double scale_factor = 0.01;
  bool build_join_indices = true;   // FK paths used by the X100 plans
  bool build_summary_indices = true;  // on all date columns (§5)
};

std::unique_ptr<Catalog> GenerateTpch(const DbgenOptions& opts);

/// Row counts for a scale factor (lineitem is approximate: 1..7 per order).
int64_t TpchOrderCount(double sf);
int64_t TpchCustomerCount(double sf);
int64_t TpchSupplierCount(double sf);
int64_t TpchPartCount(double sf);

}  // namespace x100

#endif  // X100_TPCH_DBGEN_H_
