// Disk-backed variants of Q1 and Q6: the same hand-translated plans as
// queries_x100_a.cc, but fed from ColumnBM blocks (exec/bm_scan.h) instead
// of in-RAM fragments — the paper's goal (iii), a query whose source is the
// lowest storage hierarchy. With ctx->num_threads > 1 the BmScan pipelines
// fan out across an Exchange, each worker reading its morsel through the
// shared buffer pool; results are bit-identical to the memory plans because
// the Select applies the exact predicate (BmScan has no SMA pruning to
// differ on).

#include "storage/columnbm.h"
#include "tpch/queries.h"
#include "tpch/queries_x100_internal.h"

namespace x100::tpch_x100 {

using namespace x100::exprs;
using namespace x100::plan;

namespace {

TablePtr Q1Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                bool compress) {
  const std::vector<std::string> cols = {
      "l_returnflag", "l_linestatus",  "l_quantity", "l_extendedprice",
      "l_discount",   "l_tax",         "l_shipdate"};
  const std::vector<std::string> groups = {"l_returnflag", "l_linestatus"};
  auto aggrs = [] {
    return AG(
        Sum("sum_qty", Col("l_quantity")),
        Sum("sum_base_price", Col("l_extendedprice")),
        Sum("sum_disc_price",
            Mul(Sub(LitF64(1.0), Col("l_discount")), Col("l_extendedprice"))),
        Sum("sum_charge",
            Mul(Add(LitF64(1.0), Col("l_tax")),
                Mul(Sub(LitF64(1.0), Col("l_discount")),
                    Col("l_extendedprice")))),
        Sum("sum_disc", Col("l_discount")), CountAll("count_order"));
  };
  const Table& li = db.Get("lineitem");

  OpPtr op;
  if (ctx->num_threads > 1) {
    op = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = BmScan(wctx, bm, li,
                                    {.cols = cols,
                                     .compress = compress,
                                     .morsel = {w, n}});
                    s = Select(wctx, std::move(s),
                               Le(Col("l_shipdate"), LitDate("1998-09-02")));
                    return DirectAggr(wctx, std::move(s), groups, aggrs());
                  });
    op = HashAggr(ctx, std::move(op), groups, MergeAggrSpecs(aggrs()));
  } else {
    op = BmScan(ctx, bm, li, {.cols = cols, .compress = compress});
    op = Select(ctx, std::move(op),
                Le(Col("l_shipdate"), LitDate("1998-09-02")));
    op = DirectAggr(ctx, std::move(op), groups, aggrs());
  }
  op = Project(
      ctx, std::move(op),
      NE(Pass("l_returnflag"), Pass("l_linestatus"), Pass("sum_qty"),
         Pass("sum_base_price"), Pass("sum_disc_price"), Pass("sum_charge"),
         As("avg_qty", Div(Col("sum_qty"), Call1("dbl", Col("count_order")))),
         As("avg_price",
            Div(Col("sum_base_price"), Call1("dbl", Col("count_order")))),
         As("avg_disc", Div(Col("sum_disc"), Call1("dbl", Col("count_order")))),
         Pass("count_order")));
  op = Order(ctx, std::move(op), {Asc("l_returnflag"), Asc("l_linestatus")});
  return RunPlan(std::move(op), "q1_disk");
}

TablePtr Q6Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                bool compress) {
  const std::vector<std::string> cols = {"l_shipdate", "l_discount",
                                         "l_quantity", "l_extendedprice"};
  auto pred = [] {
    return And(Ge(Col("l_shipdate"), LitDate("1994-01-01")),
               And(Lt(Col("l_shipdate"), LitDate("1995-01-01")),
                   And(Ge(Col("l_discount"), LitF64(0.05)),
                       And(Le(Col("l_discount"), LitF64(0.07)),
                           Lt(Col("l_quantity"), LitF64(24.0))))));
  };
  auto aggrs = [] {
    return AG(
        Sum("revenue", Mul(Col("l_extendedprice"), Col("l_discount"))));
  };
  const Table& t = db.Get("lineitem");

  OpPtr li;
  if (ctx->num_threads > 1) {
    li = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = BmScan(wctx, bm, t,
                                    {.cols = cols,
                                     .compress = compress,
                                     .morsel = {w, n}});
                    s = Select(wctx, std::move(s), pred());
                    return HashAggr(wctx, std::move(s), {}, aggrs());
                  });
    li = HashAggr(ctx, std::move(li), {}, MergeAggrSpecs(aggrs()));
  } else {
    li = BmScan(ctx, bm, t, {.cols = cols, .compress = compress});
    li = Select(ctx, std::move(li), pred());
    li = HashAggr(ctx, std::move(li), {}, aggrs());
  }
  return RunPlan(std::move(li), "q6_disk");
}

}  // namespace

}  // namespace x100::tpch_x100

namespace x100 {

std::unique_ptr<Table> RunX100QueryDisk(int q, ExecContext* ctx,
                                        const Catalog& db, ColumnBm* bm,
                                        bool compress) {
  using namespace tpch_x100;
  switch (q) {
    case 1: return Q1Disk(ctx, db, bm, compress);
    case 6: return Q6Disk(ctx, db, bm, compress);
    default:
      throw std::invalid_argument(
          "RunX100QueryDisk: only Q1 and Q6 have disk-backed variants (got "
          "q=" + std::to_string(q) + ")");
  }
}

}  // namespace x100
