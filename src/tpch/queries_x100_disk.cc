// Disk-backed variants of Q1, Q3, Q6 and Q14: the same hand-translated
// plans as queries_x100_a.cc/b.cc, but fed from ColumnBM blocks
// (exec/bm_scan.h) instead of in-RAM fragments — the paper's goal (iii), a
// query whose source is the lowest storage hierarchy. Q3 and Q14 exercise
// Fetch1Joins over compressed scans (the join-index columns ride through
// the block store like any other integral column). With ctx->num_threads
// > 1 the BmScan pipelines fan out across an Exchange, each worker reading
// its morsel through the shared buffer pool; serial results are
// bit-identical to the memory plans because the Select applies the exact
// predicate (BmScan has no SMA pruning to differ on).

#include "storage/columnbm.h"
#include "tpch/queries.h"
#include "tpch/queries_x100_internal.h"

namespace x100::tpch_x100 {

using namespace x100::exprs;
using namespace x100::plan;

namespace {

const std::string kJiOrders = Table::JoinIndexName("orders");
const std::string kJiPart = Table::JoinIndexName("part");
const std::string kJiCustomer = Table::JoinIndexName("customer");

TablePtr Q1Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                bool compress, std::optional<CodecId> codec) {
  const std::vector<std::string> cols = {
      "l_returnflag", "l_linestatus",  "l_quantity", "l_extendedprice",
      "l_discount",   "l_tax",         "l_shipdate"};
  const std::vector<std::string> groups = {"l_returnflag", "l_linestatus"};
  auto aggrs = [] {
    return AG(
        Sum("sum_qty", Col("l_quantity")),
        Sum("sum_base_price", Col("l_extendedprice")),
        Sum("sum_disc_price",
            Mul(Sub(LitF64(1.0), Col("l_discount")), Col("l_extendedprice"))),
        Sum("sum_charge",
            Mul(Add(LitF64(1.0), Col("l_tax")),
                Mul(Sub(LitF64(1.0), Col("l_discount")),
                    Col("l_extendedprice")))),
        Sum("sum_disc", Col("l_discount")), CountAll("count_order"));
  };
  const Table& li = db.Get("lineitem");

  OpPtr op;
  if (ctx->num_threads > 1) {
    op = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = BmScan(wctx, bm, li,
                                    {.cols = cols,
                                     .compress = compress,
                                     .codec = codec,
                                     .morsel = {w, n}});
                    s = Select(wctx, std::move(s),
                               Le(Col("l_shipdate"), LitDate("1998-09-02")));
                    return DirectAggr(wctx, std::move(s), groups, aggrs());
                  });
    op = HashAggr(ctx, std::move(op), groups, MergeAggrSpecs(aggrs()));
  } else {
    op = BmScan(ctx, bm, li,
                {.cols = cols, .compress = compress, .codec = codec});
    op = Select(ctx, std::move(op),
                Le(Col("l_shipdate"), LitDate("1998-09-02")));
    op = DirectAggr(ctx, std::move(op), groups, aggrs());
  }
  op = Project(
      ctx, std::move(op),
      NE(Pass("l_returnflag"), Pass("l_linestatus"), Pass("sum_qty"),
         Pass("sum_base_price"), Pass("sum_disc_price"), Pass("sum_charge"),
         As("avg_qty", Div(Col("sum_qty"), Call1("dbl", Col("count_order")))),
         As("avg_price",
            Div(Col("sum_base_price"), Call1("dbl", Col("count_order")))),
         As("avg_disc", Div(Col("sum_disc"), Call1("dbl", Col("count_order")))),
         Pass("count_order")));
  op = Order(ctx, std::move(op), {Asc("l_returnflag"), Asc("l_linestatus")});
  return RunPlan(std::move(op), "q1_disk");
}

TablePtr Q3Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                bool compress, std::optional<CodecId> codec) {
  const std::vector<std::string> cols = {"l_orderkey", "l_extendedprice",
                                         "l_discount", "l_shipdate",
                                         kJiOrders};
  const std::vector<std::string> groups = {"l_orderkey", "o_orderdate",
                                           "o_shippriority"};
  auto aggrs = [] { return AG(Sum("revenue", Col("rev"))); };
  const Table& t = db.Get("lineitem");
  // The shared pipeline segment below the (partial) aggregation: exact
  // shipdate filter, two Fetch1Joins over the block-served join indexes,
  // mktsegment filter, revenue projection.
  auto body = [&](ExecContext* c, OpPtr s) {
    s = Select(c, std::move(s), Gt(Col("l_shipdate"), LitDate("1995-03-15")));
    s = Fetch1Join(c, std::move(s), db.Get("orders"), kJiOrders,
                   {{"o_orderdate", "o_orderdate"},
                    {"o_shippriority", "o_shippriority"},
                    {kJiCustomer, "ji_c"}});
    s = Select(c, std::move(s), Lt(Col("o_orderdate"), LitDate("1995-03-15")));
    s = Fetch1Join(c, std::move(s), db.Get("customer"), "ji_c",
                   {{"c_mktsegment", "c_mktsegment"}});
    s = Select(c, std::move(s), Eq(Col("c_mktsegment"), LitStr("BUILDING")));
    return Project(c, std::move(s),
                   NE(Pass("l_orderkey"), Pass("o_orderdate"),
                      Pass("o_shippriority"), As("rev", Rev())));
  };

  OpPtr op;
  if (ctx->num_threads > 1) {
    op = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = BmScan(wctx, bm, t,
                                    {.cols = cols,
                                     .compress = compress,
                                     .codec = codec,
                                     .morsel = {w, n}});
                    return HashAggr(wctx, body(wctx, std::move(s)), groups,
                                    aggrs());
                  });
    op = HashAggr(ctx, std::move(op), groups, MergeAggrSpecs(aggrs()));
  } else {
    op = BmScan(ctx, bm, t,
                {.cols = cols, .compress = compress, .codec = codec});
    op = HashAggr(ctx, body(ctx, std::move(op)), groups, aggrs());
  }
  op = Project(ctx, std::move(op),
               NE(Pass("l_orderkey"), Pass("revenue"), Pass("o_orderdate"),
                  Pass("o_shippriority")));
  op = TopN(ctx, std::move(op),
            {Desc("revenue"), Asc("o_orderdate"), Asc("l_orderkey")}, 10);
  return RunPlan(std::move(op), "q3_disk");
}

TablePtr Q6Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                bool compress, std::optional<CodecId> codec) {
  const std::vector<std::string> cols = {"l_shipdate", "l_discount",
                                         "l_quantity", "l_extendedprice"};
  auto pred = [] {
    return And(Ge(Col("l_shipdate"), LitDate("1994-01-01")),
               And(Lt(Col("l_shipdate"), LitDate("1995-01-01")),
                   And(Ge(Col("l_discount"), LitF64(0.05)),
                       And(Le(Col("l_discount"), LitF64(0.07)),
                           Lt(Col("l_quantity"), LitF64(24.0))))));
  };
  auto aggrs = [] {
    return AG(
        Sum("revenue", Mul(Col("l_extendedprice"), Col("l_discount"))));
  };
  const Table& t = db.Get("lineitem");

  OpPtr li;
  if (ctx->num_threads > 1) {
    li = Exchange(ctx, ctx->num_threads,
                  [&](ExecContext* wctx, int w, int n) {
                    auto s = BmScan(wctx, bm, t,
                                    {.cols = cols,
                                     .compress = compress,
                                     .codec = codec,
                                     .morsel = {w, n}});
                    s = Select(wctx, std::move(s), pred());
                    return HashAggr(wctx, std::move(s), {}, aggrs());
                  });
    li = HashAggr(ctx, std::move(li), {}, MergeAggrSpecs(aggrs()));
  } else {
    li = BmScan(ctx, bm, t,
                {.cols = cols, .compress = compress, .codec = codec});
    li = Select(ctx, std::move(li), pred());
    li = HashAggr(ctx, std::move(li), {}, aggrs());
  }
  return RunPlan(std::move(li), "q6_disk");
}

TablePtr Q14Disk(ExecContext* ctx, const Catalog& db, ColumnBm* bm,
                 bool compress, std::optional<CodecId> codec) {
  const std::vector<std::string> cols = {"l_shipdate", "l_extendedprice",
                                         "l_discount", kJiPart};
  auto pred = [] {
    return And(Ge(Col("l_shipdate"), LitDate("1995-09-01")),
               Lt(Col("l_shipdate"), LitDate("1995-10-01")));
  };
  auto body = [&](ExecContext* c, OpPtr s) {
    s = Select(c, std::move(s), pred());
    s = Fetch1Join(c, std::move(s), db.Get("part"), kJiPart,
                   {{"p_type", "p_type"}});
    return Project(c, std::move(s), NE(Pass("p_type"), As("rev", Rev())));
  };
  const Table& t = db.Get("lineitem");

  // Materialize the filtered+joined (p_type, rev) rows — the serial plan
  // mirrors the RAM Q14 exactly (row-level base, so results are
  // bit-identical); the parallel plan pre-aggregates rev per p_type in each
  // worker so only group partials cross the Exchange.
  TablePtr base;
  if (ctx->num_threads > 1) {
    auto aggrs = [] { return AG(Sum("rev", Col("rev"))); };
    OpPtr op = Exchange(ctx, ctx->num_threads,
                        [&](ExecContext* wctx, int w, int n) {
                          auto s = BmScan(wctx, bm, t,
                                          {.cols = cols,
                                           .compress = compress,
                                           .codec = codec,
                                           .morsel = {w, n}});
                          return HashAggr(wctx, body(wctx, std::move(s)),
                                          {"p_type"}, aggrs());
                        });
    op = HashAggr(ctx, std::move(op), {"p_type"}, MergeAggrSpecs(aggrs()));
    base = RunPlan(std::move(op), "q14_disk_base");
  } else {
    OpPtr op = BmScan(ctx, bm, t,
                      {.cols = cols, .compress = compress, .codec = codec});
    base = RunPlan(body(ctx, std::move(op)), "q14_disk_base");
  }

  TablePtr allt =
      RunPlan(HashAggr(ctx, Scan(ctx, *base, {"rev"}), {},
                       AG(Sum("total", Col("rev")))),
              "q14_disk_all");
  TablePtr promo = RunPlan(
      HashAggr(ctx,
               Select(ctx, Scan(ctx, *base, {"p_type", "rev"}),
                      Like(Col("p_type"), "PROMO%")),
               {}, AG(Sum("promo", Col("rev")))),
      "q14_disk_promo");

  auto fin = CartProd(ctx, Scan(ctx, *promo, {"promo"}),
                      Scan(ctx, *allt, {"total"}), {"promo"}, {"total"});
  fin = Project(ctx, std::move(fin),
                NE(As("promo_revenue",
                      Div(Mul(LitF64(100.0), Col("promo")), Col("total")))));
  return RunPlan(std::move(fin), "q14_disk");
}

}  // namespace

}  // namespace x100::tpch_x100

namespace x100 {

std::unique_ptr<Table> RunX100QueryDisk(int q, ExecContext* ctx,
                                        const Catalog& db, ColumnBm* bm,
                                        bool compress,
                                        std::optional<CodecId> codec) {
  using namespace tpch_x100;
  switch (q) {
    case 1: return Q1Disk(ctx, db, bm, compress, codec);
    case 3: return Q3Disk(ctx, db, bm, compress, codec);
    case 6: return Q6Disk(ctx, db, bm, compress, codec);
    case 14: return Q14Disk(ctx, db, bm, compress, codec);
    default:
      throw std::invalid_argument(
          "RunX100QueryDisk: only Q1, Q3, Q6 and Q14 have disk-backed "
          "variants (got q=" + std::to_string(q) + ")");
  }
}

}  // namespace x100
