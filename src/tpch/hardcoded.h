#ifndef X100_TPCH_HARDCODED_H_
#define X100_TPCH_HARDCODED_H_

#include <cstdint>

namespace x100 {

/// Aggregation slot of the hard-coded Q1 (Figure 4): indexed directly by
/// (l_returnflag << 8) | l_linestatus. 65536 slots.
struct Q1Slot {
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  int64_t count = 0;
};

inline constexpr int kQ1SlotCount = 1 << 16;

/// The paper's hard-coded UDF for TPC-H Query 1 (§3.3, Figure 4), verbatim
/// modulo naming: one loop over restrict-qualified column arrays with the
/// common-subexpression eliminations the paper applied (one minus and the
/// three AVGs are recovered from sums and count afterwards).
void HardcodedQ1(int64_t n, int32_t hi_date,
                 const int8_t* __restrict__ p_returnflag,
                 const int8_t* __restrict__ p_linestatus,
                 const double* __restrict__ p_quantity,
                 const double* __restrict__ p_extendedprice,
                 const double* __restrict__ p_discount,
                 const double* __restrict__ p_tax,
                 const int32_t* __restrict__ p_shipdate,
                 Q1Slot* __restrict__ hashtab);

}  // namespace x100

#endif  // X100_TPCH_HARDCODED_H_
