#include "storage/table.h"

#include <algorithm>
#include <unordered_map>

#include "common/config.h"

namespace x100 {

Table::Table(std::string name, std::vector<ColumnSpec> specs)
    : name_(std::move(name)), specs_(std::move(specs)) {
  for (const ColumnSpec& s : specs_) {
    schema_.Add(s.name, s.type);
    columns_.push_back(std::make_unique<Column>(s.type, s.enum_encoded));
  }
}

int Table::ColumnIndex(const std::string& name) const {
  int i = schema_.Find(name);
  X100_CHECK(i >= 0);
  return i;
}

void Table::AppendRow(const std::vector<Value>& values) {
  X100_CHECK(!frozen_);
  X100_CHECK(values.size() == columns_.size());
  for (size_t i = 0; i < values.size(); i++) columns_[i]->AppendValue(values[i]);
  fragment_rows_++;
}

void Table::Freeze() {
  if (frozen_) return;
  // Loading may have gone through load_column(); trust the per-column counts.
  if (!columns_.empty()) {
    fragment_rows_ = columns_[0]->size();
    for (const auto& c : columns_) X100_CHECK(c->size() == fragment_rows_);
  }
  frozen_ = true;
}

void Table::EnsureDeltas() {
  if (!deltas_.empty()) return;
  for (size_t i = 0; i < columns_.size(); i++) {
    Column& frag = *columns_[i];
    if (frag.is_enum()) {
      deltas_.push_back(std::make_unique<Column>(
          frag.type(), frag.mutable_dict(), frag.storage_type()));
    } else {
      deltas_.push_back(std::make_unique<Column>(frag.type(), false));
    }
  }
}

int64_t Table::num_rows() const {
  return total_rows() - static_cast<int64_t>(deleted_sorted_.size());
}

void Table::Insert(const std::vector<Value>& values) {
  X100_CHECK(frozen_);
  EnsureDeltas();
  X100_CHECK(values.size() == deltas_.size());
  for (size_t i = 0; i < values.size(); i++) deltas_[i]->AppendValue(values[i]);
}

Status Table::Delete(int64_t rowid) {
  if (rowid < 0 || rowid >= total_rows()) {
    return Status::Error("Delete: rowid out of range");
  }
  auto it = std::lower_bound(deleted_sorted_.begin(), deleted_sorted_.end(), rowid);
  if (it != deleted_sorted_.end() && *it == rowid) {
    return Status::Error("Delete: row already deleted");
  }
  deleted_sorted_.insert(it, rowid);
  return Status::OK();
}

Status Table::Update(int64_t rowid, const std::string& col, const Value& v) {
  if (IsDeleted(rowid)) return Status::Error("Update: row is deleted");
  int ci = schema_.Find(col);
  if (ci < 0) return Status::Error("Update: no such column " + col);
  // Delete + re-insert with the modified field (Figure 8).
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (int i = 0; i < num_columns(); i++) {
    row.push_back(i == ci ? v : GetValue(rowid, i));
  }
  Status s = Delete(rowid);
  if (!s.ok()) return s;
  Insert(row);
  return Status::OK();
}

bool Table::IsDeleted(int64_t rowid) const {
  return std::binary_search(deleted_sorted_.begin(), deleted_sorted_.end(), rowid);
}

Value Table::GetValue(int64_t rowid, int col) const {
  if (rowid < fragment_rows_) return columns_[col]->GetValue(rowid);
  return deltas_[col]->GetValue(rowid - fragment_rows_);
}

void Table::Reorganize() {
  X100_CHECK(frozen_);
  std::vector<std::unique_ptr<Column>> fresh;
  for (const ColumnSpec& s : specs_) {
    fresh.push_back(std::make_unique<Column>(s.type, s.enum_encoded));
  }
  int64_t total = total_rows();
  int64_t kept = 0;
  for (int64_t r = 0; r < total; r++) {
    if (IsDeleted(r)) continue;
    for (int c = 0; c < static_cast<int>(specs_.size()); c++) {
      fresh[c]->AppendValue(GetValue(r, c));
    }
    kept++;
  }
  // Join-index columns (appended after construction) are dropped: their
  // target #rowIds may be stale anyway. Callers rebuild them.
  columns_ = std::move(fresh);
  schema_ = Schema();
  for (const ColumnSpec& s : specs_) schema_.Add(s.name, s.type);
  deltas_.clear();
  deleted_sorted_.clear();
  fragment_rows_ = kept;
  // Summary indices are fragment-bound; rebuild the ones we had.
  std::vector<std::string> indexed;
  for (const auto& [col_name, idx] : summary_) indexed.push_back(col_name);
  summary_.clear();
  for (const std::string& col_name : indexed) BuildSummaryIndex(col_name);
}

Table::Merged Table::BuildMerged() const {
  X100_CHECK(frozen_);
  Merged m;
  for (const ColumnSpec& s : specs_) {
    m.columns.push_back(std::make_unique<Column>(s.type, s.enum_encoded));
  }
  int64_t total = total_rows();
  for (int64_t r = 0; r < total; r++) {
    if (IsDeleted(r)) continue;
    for (size_t c = 0; c < specs_.size(); c++) {
      m.columns[c]->AppendValue(GetValue(r, static_cast<int>(c)));
    }
    m.rows++;
  }
  return m;
}

void Table::InstallMerged(
    Merged merged,
    std::vector<std::pair<std::string, std::unique_ptr<Column>>> extra) {
  X100_CHECK(frozen_);
  columns_ = std::move(merged.columns);
  schema_ = Schema();
  for (const ColumnSpec& s : specs_) schema_.Add(s.name, s.type);
  fragment_rows_ = merged.rows;
  deltas_.clear();
  deleted_sorted_.clear();
  for (auto& [ji_name, col] : extra) {
    X100_CHECK(col->size() == fragment_rows_);
    schema_.Add(ji_name, col->type());
    columns_.push_back(std::move(col));
  }
  std::vector<std::string> indexed;
  for (const auto& [col_name, idx] : summary_) indexed.push_back(col_name);
  summary_.clear();
  for (const std::string& col_name : indexed) BuildSummaryIndex(col_name);
  fragment_version_++;
}

void Table::BuildSummaryIndex(const std::string& col_name) {
  int ci = ColumnIndex(col_name);
  summary_.insert_or_assign(
      col_name, SummaryIndex::Build(*columns_[ci], kSummaryIndexGranule));
}

const SummaryIndex* Table::summary_index(int col) const {
  auto it = summary_.find(schema_.field(col).name);
  return it == summary_.end() ? nullptr : &it->second;
}

std::string Table::JoinIndexName(const std::string& target_table) {
  return "#ji_" + target_table;
}

Status Table::BuildJoinIndex(const std::string& fk_col, const Table& target,
                             const std::string& key_col) {
  return BuildJoinIndex(std::vector<std::string>{fk_col}, target,
                        std::vector<std::string>{key_col});
}

Status Table::BuildJoinIndex(const std::vector<std::string>& fk_cols,
                             const Table& target,
                             const std::vector<std::string>& key_cols) {
  X100_CHECK(!fk_cols.empty() && fk_cols.size() == key_cols.size());
  std::vector<int> fk, key;
  for (const std::string& c : fk_cols) {
    int i = schema_.Find(c);
    if (i < 0) return Status::Error("BuildJoinIndex: no column " + c);
    fk.push_back(i);
  }
  for (const std::string& c : key_cols) {
    int i = target.schema_.Find(c);
    if (i < 0) return Status::Error("BuildJoinIndex: no target column " + c);
    key.push_back(i);
  }

  auto composite = [&](const Table& t, int64_t r, const std::vector<int>& cols) {
    uint64_t h = static_cast<uint64_t>(t.GetValue(r, cols[0]).AsI64());
    for (size_t c = 1; c < cols.size(); c++) {
      // Keys are i32 in practice; shifting keeps composites collision-free.
      h = (h << 32) ^ static_cast<uint64_t>(t.GetValue(r, cols[c]).AsI64());
    }
    return static_cast<int64_t>(h);
  };

  std::unordered_map<int64_t, int64_t> key_to_row;
  key_to_row.reserve(static_cast<size_t>(target.total_rows()));
  for (int64_t r = 0; r < target.total_rows(); r++) {
    if (target.IsDeleted(r)) continue;
    key_to_row[composite(target, r, key)] = r;
  }

  // Fragment part and (when delta storage exists) delta part are built as
  // separate columns, preserving the fragment/delta split every other
  // column has — a catalog restored from a checkpoint image rebuilds join
  // indices over tables that already carry delta rows.
  auto build = [&](int64_t begin, int64_t end,
                   std::unique_ptr<Column>* out) -> Status {
    auto ji = std::make_unique<Column>(TypeId::kI64, false);
    for (int64_t r = begin; r < end; r++) {
      auto it = key_to_row.find(composite(*this, r, fk));
      if (it == key_to_row.end()) {
        return Status::Error("BuildJoinIndex: dangling foreign key in " +
                             fk_cols[0]);
      }
      ji->AppendI64(it->second);
    }
    *out = std::move(ji);
    return Status::OK();
  };

  std::unique_ptr<Column> ji, ji_delta;
  int64_t frag_end = deltas_.empty() ? total_rows() : fragment_rows_;
  Status s = build(0, frag_end, &ji);
  if (!s.ok()) return s;
  if (!deltas_.empty()) {
    s = build(fragment_rows_, total_rows(), &ji_delta);
    if (!s.ok()) return s;
  }

  std::string ji_name = JoinIndexName(target.name());
  int existing = schema_.Find(ji_name);
  if (existing >= 0) {
    columns_[existing] = std::move(ji);
    if (ji_delta != nullptr) deltas_[existing] = std::move(ji_delta);
  } else {
    schema_.Add(ji_name, TypeId::kI64);
    columns_.push_back(std::move(ji));
    if (ji_delta != nullptr) deltas_.push_back(std::move(ji_delta));
  }
  return Status::OK();
}

Table::RowRange Table::MorselRange(int64_t begin, int64_t end, int worker,
                                   int num_workers, int64_t align) {
  X100_CHECK(num_workers >= 1 && worker >= 0 && worker < num_workers);
  X100_CHECK(align >= 1 && begin <= end);
  // Split point w: begin + w/num_workers of the range, floored to an
  // absolute `align` boundary so interior cuts coincide with granule
  // starts. Flooring a monotone sequence keeps it monotone, and points 0
  // and num_workers are pinned to begin/end, so the morsels tile [begin,
  // end) exactly.
  auto point = [&](int w) -> int64_t {
    if (w <= 0) return begin;
    if (w >= num_workers) return end;
    int64_t raw = begin + (end - begin) * w / num_workers;
    int64_t aligned = raw / align * align;
    return std::clamp(aligned, begin, end);
  };
  return {point(worker), point(worker + 1)};
}

}  // namespace x100
