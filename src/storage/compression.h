#ifndef X100_STORAGE_COMPRESSION_H_
#define X100_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <cstddef>

#include "storage/buffer.h"

namespace x100 {

/// Lightweight compression codecs for integer columns — the "lightweight
/// data compression" §4.3 attaches to the vertically fragmented disk layout,
/// and the future-work item on reducing I/O bandwidth. Each codec stores a
/// block in a self-describing layout with a tight, branch-poor decode loop
/// meant to run at the RAM/cache boundary (§4 "Cache"): the point is that
/// decompression bandwidth, not disk bandwidth, bounds cold scans.
///
/// Codec ids are persisted per block in the X100COL2 disk format, so the
/// numeric values below are part of the on-disk contract and must not be
/// reassigned.
enum class CodecId : uint8_t {
  kRaw = 0,        // verbatim bytes, no header (count = bytes / width)
  kFor = 1,        // frame-of-reference bit-packing (ForCodec layout)
  kPdict = 2,      // dictionary + bit-packed codes (low-cardinality columns)
  kRle = 3,        // run-length (sorted / clustered columns)
  kPforDelta = 4,  // FOR over deltas with exception patching (monotone keys)
};

constexpr int kNumCodecs = 5;

/// Common interface over the codecs. Implementations are stateless
/// singletons — look them up with Codec::ForId and share freely across
/// threads (BmScanOp decodes on the prefetch thread).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  /// Short stable name used in metrics/trace counters:
  /// "raw", "for", "pdict", "rle", "pford".
  virtual const char* name() const = 0;

  /// Worst-case encoded bytes for `n` values of `width` bytes each.
  virtual size_t MaxEncodedBytes(int64_t n, size_t width) const = 0;

  /// Encodes `n` values of width `width` (1, 2, 4 or 8 bytes, signed; 4-byte
  /// dates included) appending to `out`; returns the encoded byte count.
  virtual size_t Encode(const void* in, int64_t n, size_t width,
                        Buffer* out) const = 0;

  /// Decodes a block produced by Encode back into `out` (same width).
  /// `encoded_bytes` is the block's stored size (needed by kRaw, whose
  /// payload has no header). Returns the number of values decoded.
  virtual int64_t Decode(const void* encoded, size_t encoded_bytes, void* out,
                         size_t width) const = 0;

  /// Value count of an encoded block without decoding it.
  virtual int64_t EncodedCount(const void* encoded, size_t encoded_bytes,
                               size_t width) const = 0;

  /// Singleton for a codec id; nullptr for ids outside the known set
  /// (DiskStore uses this to reject corrupt block footers).
  static const Codec* ForId(CodecId id);
  static const Codec* ForId(uint8_t id) {
    return ForId(static_cast<CodecId>(id));
  }
  /// All known codecs, indexed by CodecId value.
  static const Codec* const* All();
  static const char* Name(CodecId id);
};

/// Picks the cheapest codec for a block by trial-encoding a contiguous
/// prefix sample (contiguous so RLE run structure survives sampling) and
/// extrapolating bytes/value; kRaw wins when nothing beats verbatim storage.
CodecId PickCodec(const void* in, int64_t n, size_t width,
                  int64_t sample_limit = 4096);

/// Encodes with PickCodec's winner, falling back to kRaw if the full encode
/// turns out no smaller than verbatim bytes (sampling can over-promise, e.g.
/// a dictionary whose tail cardinality explodes). Appends to `out`, returns
/// encoded bytes, stores the codec actually used in `*chosen`.
size_t EncodeBestCodec(const void* in, int64_t n, size_t width, Buffer* out,
                       CodecId* chosen);

/// Frame-of-reference (FOR) compression. Values in a block are stored as
/// bit-packed unsigned deltas from the block minimum.
///
/// Encoded block layout:
///   int64  reference (block minimum)
///   uint16 bits per value (0..64)
///   uint16 reserved
///   uint32 value count
///   uint64 words[ceil(n*bits/64)]
class ForCodec {
 public:
  /// Bytes an encoded block of `n` values can take at worst.
  static size_t MaxEncodedBytes(int64_t n) {
    return kHeaderBytes + (static_cast<size_t>(n) * 64 + 63) / 64 * 8 + 8;
  }

  /// Encodes `n` values of width `width` (1, 2, 4 or 8 bytes, signed; 4-byte
  /// dates included) into `out`, returning the encoded byte count.
  static size_t Encode(const void* in, int64_t n, size_t width, Buffer* out);

  /// Decodes a block produced by Encode back into `out` (same width).
  /// Returns the number of values decoded.
  static int64_t Decode(const void* encoded, void* out, size_t width);

  /// Value count of an encoded block without decoding it.
  static int64_t EncodedCount(const void* encoded);
  /// Encoded byte size of a block (from its header).
  static size_t EncodedBytes(const void* encoded);

  static constexpr size_t kHeaderBytes = 16;
};

/// Dictionary compression: distinct values sorted ascending, occurrences
/// stored as bit-packed codes. Wins on low-cardinality columns (flags,
/// enums) where FOR's min..max range is wide but the value set is tiny.
///
/// Encoded block layout:
///   uint32 value count
///   uint32 dictionary size
///   uint16 bits per code (0 when the dictionary has <= 1 entry)
///   uint16 reserved
///   uint32 reserved
///   <width> dict[dictionary size]   (physical width, ascending)
///   uint64 words[ceil(n*bits/64)]
class PdictCodec {
 public:
  static constexpr size_t kHeaderBytes = 16;
};

/// Run-length encoding: (value, run length) pairs. Wins on sorted or
/// clustered columns (l_shipdate, o_orderdate) where runs are long.
///
/// Encoded block layout:
///   uint32 value count
///   uint32 run count
///   uint64 reserved
///   { int64 value; uint32 length }  runs[run count]   (12 bytes each)
class RleCodec {
 public:
  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kRunBytes = 12;
};

/// PFOR-delta: consecutive differences bit-packed against the minimum delta,
/// with out-of-range deltas patched from an exception list, then a prefix
/// sum rebuilds the values. Wins on monotone key columns (l_orderkey) whose
/// absolute range defeats FOR but whose steps are tiny and near-uniform.
/// Deltas use modular arithmetic in the column's physical width, so any
/// input (including INT64_MIN/MAX neighbours) round-trips.
///
/// Encoded block layout:
///   int64  base (first value)
///   int64  reference (minimum delta, unsigned domain)
///   uint32 value count
///   uint32 exception count
///   uint16 bits per packed delta
///   uint16 reserved
///   uint32 reserved
///   uint64 words[ceil((n-1)*bits/64)]
///   { uint32 pos; int64 delta }  exceptions[exception count]  (12 bytes)
class PforDeltaCodec {
 public:
  static constexpr size_t kHeaderBytes = 32;
  static constexpr size_t kExceptionBytes = 12;
};

}  // namespace x100

#endif  // X100_STORAGE_COMPRESSION_H_
