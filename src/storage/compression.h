#ifndef X100_STORAGE_COMPRESSION_H_
#define X100_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <cstddef>

#include "storage/buffer.h"

namespace x100 {

/// Lightweight frame-of-reference (FOR) compression for integer columns —
/// the "lightweight data compression" §4.3 attaches to the vertically
/// fragmented disk layout, and the future-work item on reducing I/O
/// bandwidth. Values in a block are stored as bit-packed unsigned deltas
/// from the block minimum; decompression is a tight, branch-poor loop meant
/// to run at the RAM/cache boundary (§4 "Cache").
///
/// Encoded block layout:
///   int64  reference (block minimum)
///   uint16 bits per value (0..64)
///   uint16 reserved
///   uint32 value count
///   uint64 words[ceil(n*bits/64)]
class ForCodec {
 public:
  /// Bytes an encoded block of `n` values can take at worst.
  static size_t MaxEncodedBytes(int64_t n) {
    return kHeaderBytes + (static_cast<size_t>(n) * 64 + 63) / 64 * 8 + 8;
  }

  /// Encodes `n` values of width `width` (1, 2, 4 or 8 bytes, signed; 4-byte
  /// dates included) into `out`, returning the encoded byte count.
  static size_t Encode(const void* in, int64_t n, size_t width, Buffer* out);

  /// Decodes a block produced by Encode back into `out` (same width).
  /// Returns the number of values decoded.
  static int64_t Decode(const void* encoded, void* out, size_t width);

  /// Value count of an encoded block without decoding it.
  static int64_t EncodedCount(const void* encoded);
  /// Encoded byte size of a block (from its header).
  static size_t EncodedBytes(const void* encoded);

  static constexpr size_t kHeaderBytes = 16;
};

}  // namespace x100

#endif  // X100_STORAGE_COMPRESSION_H_
