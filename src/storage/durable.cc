#include "storage/durable.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/metrics.h"
#include "storage/serialize.h"

namespace x100 {

namespace {

struct DurableMetrics {
  Counter* checkpoints;
  Counter* merges;
  Counter* recovered_tables;
  static DurableMetrics& Get() {
    static DurableMetrics m = {
        MetricsRegistry::Get().GetCounter("server.wal.checkpoints"),
        MetricsRegistry::Get().GetCounter("server.wal.merges"),
        MetricsRegistry::Get().GetCounter("server.wal.recovered_tables"),
    };
    return m;
  }
};

// -- WAL record bodies --
//
// Append body: u16 num_values, then per value u8 TypeId + payload
// (i64/f64 little-endian, or u32 length + bytes for strings).
// Delete body: u64 rowid.

void PutRaw(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

std::string EncodeRow(const std::vector<Value>& row) {
  std::string body;
  uint16_t n = static_cast<uint16_t>(row.size());
  PutRaw(&body, &n, 2);
  for (const Value& v : row) {
    uint8_t t = static_cast<uint8_t>(v.type());
    PutRaw(&body, &t, 1);
    switch (v.type()) {
      case TypeId::kStr: {
        const std::string& s = v.AsStr();
        uint32_t len = static_cast<uint32_t>(s.size());
        PutRaw(&body, &len, 4);
        body.append(s);
        break;
      }
      case TypeId::kF64:
      case TypeId::kF32: {
        double d = v.AsF64();
        PutRaw(&body, &d, 8);
        break;
      }
      default: {
        int64_t i = v.AsI64();
        PutRaw(&body, &i, 8);
      }
    }
  }
  return body;
}

Status DecodeRow(const std::string& body, std::vector<Value>* row) {
  size_t off = 0;
  auto need = [&](size_t n) { return body.size() - off >= n; };
  if (!need(2)) return Status::Error("wal: truncated append body");
  uint16_t n;
  std::memcpy(&n, body.data(), 2);
  off = 2;
  row->clear();
  row->reserve(n);
  for (int i = 0; i < n; i++) {
    if (!need(1)) return Status::Error("wal: truncated append body");
    uint8_t t = static_cast<uint8_t>(body[off++]);
    if (t >= static_cast<uint8_t>(TypeId::kCount)) {
      return Status::Error("wal: bad value type in append body");
    }
    TypeId type = static_cast<TypeId>(t);
    switch (type) {
      case TypeId::kStr: {
        if (!need(4)) return Status::Error("wal: truncated append body");
        uint32_t len;
        std::memcpy(&len, body.data() + off, 4);
        off += 4;
        if (!need(len)) return Status::Error("wal: truncated append body");
        row->push_back(Value::Str(body.substr(off, len)));
        off += len;
        break;
      }
      case TypeId::kF64:
      case TypeId::kF32: {
        if (!need(8)) return Status::Error("wal: truncated append body");
        double d;
        std::memcpy(&d, body.data() + off, 8);
        off += 8;
        row->push_back(Value::F64(d));
        break;
      }
      default: {
        if (!need(8)) return Status::Error("wal: truncated append body");
        int64_t v;
        std::memcpy(&v, body.data() + off, 8);
        off += 8;
        switch (type) {
          case TypeId::kI8:  row->push_back(Value::I8(static_cast<int8_t>(v))); break;
          case TypeId::kU8:  row->push_back(Value::U8(static_cast<uint8_t>(v))); break;
          case TypeId::kI16: row->push_back(Value::I16(static_cast<int16_t>(v))); break;
          case TypeId::kU16: row->push_back(Value::U16(static_cast<uint16_t>(v))); break;
          case TypeId::kI32: row->push_back(Value::I32(static_cast<int32_t>(v))); break;
          case TypeId::kDate: row->push_back(Value::Date(static_cast<int32_t>(v))); break;
          default: row->push_back(Value::I64(v));
        }
      }
    }
  }
  if (off != body.size()) return Status::Error("wal: trailing append bytes");
  return Status::OK();
}

constexpr char kImagePrefix[] = "checkpoint-";
constexpr char kImageSuffix[] = ".cat";

std::string ImagePath(const std::string& dir, uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kImagePrefix,
                static_cast<unsigned long long>(lsn), kImageSuffix);
  return (std::filesystem::path(dir) / buf).string();
}

/// Highest checkpoint image lsn in `dir`, or 0 when none.
uint64_t FindImageLsn(const std::string& dir) {
  uint64_t best = 0;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = e.path().filename().string();
    size_t plen = sizeof(kImagePrefix) - 1;
    if (name.rfind(kImagePrefix, 0) != 0 || name.size() <= plen + 4) continue;
    if (name.substr(name.size() - 4) != kImageSuffix) continue;
    uint64_t lsn =
        std::strtoull(name.substr(plen, name.size() - plen - 4).c_str(),
                      nullptr, 10);
    best = std::max(best, lsn);
  }
  return best;
}

}  // namespace

DurableStore::DurableStore(const Options& opts,
                           std::unique_ptr<Catalog> catalog, uint64_t image_lsn)
    : opts_(opts), catalog_(std::move(catalog)), image_lsn_(image_lsn) {}

std::unique_ptr<DurableStore> DurableStore::Open(const Options& opts,
                                                 std::unique_ptr<Catalog> base,
                                                 std::string* error) {
  X100_CHECK(!opts.wal_dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(opts.wal_dir, ec);
  if (ec) {
    *error = "durable: cannot create " + opts.wal_dir + ": " + ec.message();
    return nullptr;
  }

  std::unique_ptr<Catalog> catalog = std::move(base);
  uint64_t image_lsn = FindImageLsn(opts.wal_dir);
  if (image_lsn != 0) {
    std::unique_ptr<Catalog> loaded =
        LoadCatalog(ImagePath(opts.wal_dir, image_lsn), error);
    if (loaded == nullptr) return nullptr;
    catalog = std::move(loaded);
  }

  std::unique_ptr<DurableStore> store(
      new DurableStore(opts, std::move(catalog), image_lsn));
  Wal::Options wopts;
  wopts.dir = opts.wal_dir;
  wopts.group_commit_us = opts.group_commit_us;
  store->wal_ = Wal::Open(wopts, error);
  if (store->wal_ == nullptr) return nullptr;
  return store;
}

DurableStore::~DurableStore() {
  {
    std::lock_guard<std::mutex> lk(merge_mu_);
    stop_merge_ = true;
  }
  merge_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
}

Status DurableStore::RegisterJoinIndex(const std::string& table,
                                       const std::vector<std::string>& fk_cols,
                                       const std::string& target,
                                       const std::vector<std::string>& key_cols) {
  X100_CHECK(mvcc_.empty());  // before Recover()
  Table* t = catalog_->Find(table);
  const Table* tgt = catalog_->Find(target);
  if (t == nullptr || tgt == nullptr) {
    return Status::Error("register join index: unknown table");
  }
  if (t->schema().Find(Table::JoinIndexName(target)) < 0) {
    Status s = t->BuildJoinIndex(fk_cols, *tgt, key_cols);
    if (!s.ok()) return s;
  }
  ji_specs_.push_back({table, fk_cols, target, key_cols});
  is_ji_target_[target] = true;
  return Status::OK();
}

Status DurableStore::Apply(const WalRecord& rec) {
  auto it = mvcc_.find(rec.table);
  switch (rec.type) {
    case WalRecordType::kAppend: {
      if (it == mvcc_.end()) return Status::Error("wal: unknown table " + rec.table);
      std::vector<Value> row;
      Status s = DecodeRow(rec.body, &row);
      if (!s.ok()) return s;
      return it->second->Append(row);
    }
    case WalRecordType::kDelete: {
      if (it == mvcc_.end()) return Status::Error("wal: unknown table " + rec.table);
      if (rec.body.size() != 8) return Status::Error("wal: bad delete body");
      uint64_t rowid;
      std::memcpy(&rowid, rec.body.data(), 8);
      return it->second->Delete(static_cast<int64_t>(rowid));
    }
    case WalRecordType::kMerge: {
      if (it == mvcc_.end()) return Status::Error("wal: unknown table " + rec.table);
      return it->second->Merge();
    }
    case WalRecordType::kCheckpoint:
      return Status::OK();  // marker only; the image carries the state
  }
  return Status::Error("wal: unknown record type");
}

Status DurableStore::Recover() {
  X100_CHECK(mvcc_.empty());
  // Reserve enough delta headroom that steady-state appends between merges
  // never hit the capacity fence.
  int64_t reserve = opts_.merge_threshold_rows * 2;
  for (const std::string& name : catalog_->TableNames()) {
    Table* t = catalog_->Find(name);
    if (!t->frozen()) t->Freeze();
    mvcc_.emplace(name, std::make_unique<MvccTable>(t, reserve));
    DurableMetrics::Get().recovered_tables->Inc();
  }
  for (const JiRegistration& reg : ji_specs_) {
    mvcc_.at(reg.table)->RegisterJoinIndex(reg.fk_cols,
                                           catalog_->Find(reg.target),
                                           reg.key_cols, reg.target);
  }
  Status s = wal_->Replay(
      image_lsn_, [this](const WalRecord& rec) { return Apply(rec); });
  if (!s.ok()) return s;

  if (opts_.background_merge) {
    merger_ = std::thread([this] { MergeLoop(); });
  }
  return Status::OK();
}

Status DurableStore::Append(const std::string& table,
                            const std::vector<Value>& row, bool durable,
                            uint64_t* lsn) {
  auto it = mvcc_.find(table);
  if (it == mvcc_.end()) return Status::Error("append: unknown table " + table);
  uint64_t rec_lsn;
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    Status s = it->second->Append(row);
    if (!s.ok()) return s;
    rec_lsn = wal_->Append(WalRecordType::kAppend, table, EncodeRow(row));
  }
  if (lsn != nullptr) *lsn = rec_lsn;
  if (durable) return wal_->Commit(rec_lsn);
  return Status::OK();
}

Status DurableStore::Delete(const std::string& table, int64_t rowid,
                            bool durable, uint64_t* lsn) {
  auto it = mvcc_.find(table);
  if (it == mvcc_.end()) return Status::Error("delete: unknown table " + table);
  uint64_t rec_lsn;
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    Status s = it->second->Delete(rowid);
    if (!s.ok()) return s;
    std::string body(8, '\0');
    uint64_t r = static_cast<uint64_t>(rowid);
    std::memcpy(body.data(), &r, 8);
    rec_lsn = wal_->Append(WalRecordType::kDelete, table, std::move(body));
  }
  if (lsn != nullptr) *lsn = rec_lsn;
  if (durable) return wal_->Commit(rec_lsn);
  return Status::OK();
}

std::shared_ptr<SnapshotSet> DurableStore::PinAll() {
  auto set = std::make_shared<SnapshotSet>();
  for (auto& [name, mvcc] : mvcc_) {
    set->tables.emplace(name, mvcc->Pin());
  }
  return set;
}

Status DurableStore::Checkpoint() {
  std::lock_guard<std::mutex> lk(write_mu_);  // quiesce writers
  uint64_t lsn = wal_->last_lsn();
  std::string path = ImagePath(opts_.wal_dir, lsn);
  std::string tmp = path + ".tmp";
  Status s = SaveCatalog(*catalog_, tmp);
  if (!s.ok()) return s;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Error("checkpoint: rename failed for " + path);
  }
  s = wal_->Checkpoint(lsn);
  if (!s.ok()) return s;
  // Older images are superseded; recovery picks the highest lsn anyway.
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(opts_.wal_dir, ec)) {
    std::string name = e.path().filename().string();
    if (name.rfind(kImagePrefix, 0) == 0 && e.path().string() != path &&
        name.size() > 4 && name.substr(name.size() - 4) == kImageSuffix) {
      std::filesystem::remove(e.path(), ec);
    }
  }
  image_lsn_ = lsn;
  DurableMetrics::Get().checkpoints->Inc();
  return Status::OK();
}

int DurableStore::MergeIfNeeded() {
  int merged = 0;
  for (auto& [name, mvcc] : mvcc_) {
    if (is_ji_target_.count(name) != 0) continue;
    if (mvcc->delta_rows() < opts_.merge_threshold_rows) continue;
    std::lock_guard<std::mutex> lk(write_mu_);
    if (mvcc->delta_rows() < opts_.merge_threshold_rows) continue;
    // Log first so replay merges at the same point in the total order
    // (rowid reassignment must be reproduced exactly).
    uint64_t lsn = wal_->Append(WalRecordType::kMerge, name, "");
    Status s = mvcc->Merge();
    X100_CHECK_OK(s);
    Status c = wal_->Commit(lsn);
    X100_CHECK_OK(c);
    DurableMetrics::Get().merges->Inc();
    merged++;
  }
  return merged;
}

void DurableStore::MergeLoop() {
  std::unique_lock<std::mutex> lk(merge_mu_);
  while (!stop_merge_) {
    merge_cv_.wait_for(lk, std::chrono::milliseconds(50),
                       [&] { return stop_merge_; });
    if (stop_merge_) return;
    lk.unlock();
    MergeIfNeeded();
    lk.lock();
  }
}

MvccTable* DurableStore::mvcc(const std::string& table) {
  auto it = mvcc_.find(table);
  return it == mvcc_.end() ? nullptr : it->second.get();
}

}  // namespace x100
