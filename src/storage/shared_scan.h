#ifndef X100_STORAGE_SHARED_SCAN_H_
#define X100_STORAGE_SHARED_SCAN_H_

// Shared-scan registry: concurrent BmScanOps over the same frozen file
// attach to an in-progress block load instead of duplicating the I/O and
// decode work. The first scan to ask for a (file, block) pair becomes the
// *owner* — it performs the read (and codec decode, for compressed blocks)
// exactly as a solo scan would, then publishes the result. Every other scan
// that arrives while the load is in flight (or while the published payload
// is still referenced by someone) *attaches*: it blocks until the owner
// resolves and reuses the payload by shared_ptr/pin, paying zero I/O.
//
// Entries are weak: the registry never extends a payload's lifetime. Once
// the last scan drops its reference the entry expires and the next reader
// loads fresh (typically a buffer-pool hit anyway). An owner whose load
// fails removes the entry and wakes attachers with the error; attachers
// then fall back to a direct load so one scan's I/O failure handling never
// decides another query's fate.
//
// Metrics: bm.shared.published_blocks (owner loads published) and
// bm.shared.attached_blocks (reads served by attaching) in the global
// registry; the per-operator counts land in EXPLAIN ANALYZE traces.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/columnbm.h"

namespace x100 {

class SharedScanRegistry {
 public:
  /// Payload of one (file, block) load. Published once by the owning scan,
  /// then immutable; consumed concurrently by any number of attached scans.
  struct Block {
    /// Decoded mode (compressed blocks): the decoded values.
    bool decoded_mode = false;
    std::shared_ptr<std::vector<char>> decoded;
    int64_t count = 0;  // decoded value count
    /// Raw mode: zero-copy view; the ref carries the buffer-pool pin.
    ColumnBm::BlockRef ref;
    bool pool_hit = false;

   private:
    friend class SharedScanRegistry;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    std::string key;  // registry map key, for unregistering on failure
  };

  /// One scan's stake in a block load. Owners MUST resolve with exactly one
  /// Publish() or Fail(); attachers call Wait().
  struct Lease {
    std::shared_ptr<Block> block;
    bool owner = false;
    bool attached = false;  // counted toward bm.shared.attached_blocks
  };

  /// Joins (or starts) the load of block `b` of `file`. If an entry for the
  /// key is live — load in flight or payload still referenced — the caller
  /// attaches to it; otherwise the caller becomes the owner.
  Lease Acquire(const std::string& file, int64_t b);

  /// Owner: the lease's Block fields are filled in; wake attachers. The
  /// entry stays discoverable (weakly) while any scan holds the payload.
  void Publish(const Lease& lease);

  /// Owner: the load threw. Unregisters the key (a later Acquire starts
  /// fresh) and wakes attachers with `error`.
  void Fail(const Lease& lease, std::string error);

  /// Attacher: blocks until the owner resolves. Returns true when the
  /// payload is ready; false when the owner failed (`*error` set, caller
  /// falls back to a direct load).
  bool Wait(const Lease& lease, std::string* error);

 private:
  std::mutex mu_;
  // Live loads/payloads by "file#block". Weak: expired entries are replaced
  // on the next Acquire and erased lazily.
  std::map<std::string, std::weak_ptr<Block>> blocks_;
};

}  // namespace x100

#endif  // X100_STORAGE_SHARED_SCAN_H_
