#include "storage/column.h"

#include <cstring>

namespace x100 {

namespace {

int64_t F64Key(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0
  int64_t k;
  std::memcpy(&k, &d, sizeof(k));
  return k;
}

}  // namespace

// ---- Dictionary -------------------------------------------------------------

int Dictionary::CodeOf(const Value& v) {
  int found = Lookup(v);
  if (found >= 0) return found;
  int code = size_++;
  switch (value_type_) {
    case TypeId::kStr: {
      const char* p = heap_.Add(v.AsStr());
      values_.PushBack(p);
      str_lookup_[v.AsStr()] = code;
      break;
    }
    case TypeId::kF64: {
      values_.PushBack(v.AsF64());
      int_lookup_[F64Key(v.AsF64())] = code;
      break;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      values_.PushBack(static_cast<int32_t>(v.AsI64()));
      int_lookup_[v.AsI64()] = code;
      break;
    }
    case TypeId::kI64: {
      values_.PushBack(v.AsI64());
      int_lookup_[v.AsI64()] = code;
      break;
    }
    default:
      X100_CHECK(false);
  }
  return code;
}

int Dictionary::Lookup(const Value& v) const {
  if (value_type_ == TypeId::kStr) {
    auto it = str_lookup_.find(v.AsStr());
    return it == str_lookup_.end() ? -1 : it->second;
  }
  int64_t key = value_type_ == TypeId::kF64 ? F64Key(v.AsF64()) : v.AsI64();
  auto it = int_lookup_.find(key);
  return it == int_lookup_.end() ? -1 : it->second;
}

Value Dictionary::ValueAt(int code) const {
  X100_CHECK(code >= 0 && code < size_);
  switch (value_type_) {
    case TypeId::kStr:  return Value::Str(values_.At<const char*>(code));
    case TypeId::kF64:  return Value::F64(values_.At<double>(code));
    case TypeId::kI32:  return Value::I32(values_.At<int32_t>(code));
    case TypeId::kDate: return Value::Date(values_.At<int32_t>(code));
    case TypeId::kI64:  return Value::I64(values_.At<int64_t>(code));
    default:
      X100_CHECK(false);
  }
  return Value();
}

// ---- Column -----------------------------------------------------------------

Column::Column(TypeId type, bool enum_encoded) : type_(type) {
  if (enum_encoded) {
    owned_dict_ = std::make_unique<Dictionary>(type);
    dict_ = owned_dict_.get();
    storage_ = TypeId::kU8;
  } else {
    storage_ = type;
  }
}

Column::Column(TypeId type, Dictionary* shared_dict, TypeId code_type)
    : type_(type), storage_(code_type), dict_(shared_dict), allow_promote_(false) {
  X100_CHECK(code_type == TypeId::kU8 || code_type == TypeId::kU16);
}

void Column::AppendCode(int code) {
  X100_CHECK(code >= 0 && code < 65536);
  if (storage_ == TypeId::kU8 && code > 255) {
    // A shared-dict (delta) column cannot change code width behind the
    // fragment's back; the table needs a Reorganize() first.
    X100_CHECK(allow_promote_);
    // Promote codes u8 -> u16 in place.
    Buffer wide;
    wide.Reserve(rows_ * 2);
    for (int64_t i = 0; i < rows_; i++) {
      wide.PushBack(static_cast<uint16_t>(data_.At<uint8_t>(i)));
    }
    data_ = std::move(wide);
    storage_ = TypeId::kU16;
  }
  if (storage_ == TypeId::kU8) {
    data_.PushBack(static_cast<uint8_t>(code));
  } else {
    data_.PushBack(static_cast<uint16_t>(code));
  }
  rows_++;
}

void Column::WidenCodesToU16() {
  X100_CHECK(dict_ != nullptr);
  if (storage_ == TypeId::kU16) return;
  Buffer wide;
  wide.Reserve(static_cast<size_t>(rows_) * 2);
  for (int64_t i = 0; i < rows_; i++) {
    wide.PushBack(static_cast<uint16_t>(data_.At<uint8_t>(i)));
  }
  data_ = std::move(wide);
  storage_ = TypeId::kU16;
}

void Column::AppendI64(int64_t v) {
  if (dict_) {
    AppendCode(dict_->CodeOf(type_ == TypeId::kI64 ? Value::I64(v)
                                                   : Value::I32(static_cast<int32_t>(v))));
    return;
  }
  switch (type_) {
    case TypeId::kI8:   data_.PushBack(static_cast<int8_t>(v)); break;
    case TypeId::kU8:   data_.PushBack(static_cast<uint8_t>(v)); break;
    case TypeId::kI16:  data_.PushBack(static_cast<int16_t>(v)); break;
    case TypeId::kU16:  data_.PushBack(static_cast<uint16_t>(v)); break;
    case TypeId::kI32:
    case TypeId::kDate: data_.PushBack(static_cast<int32_t>(v)); break;
    case TypeId::kI64:  data_.PushBack(v); break;
    case TypeId::kF64:  data_.PushBack(static_cast<double>(v)); break;
    default:
      X100_CHECK(false);
  }
  rows_++;
}

void Column::AppendF64(double v) {
  if (dict_) {
    AppendCode(dict_->CodeOf(Value::F64(v)));
    return;
  }
  X100_CHECK(type_ == TypeId::kF64);
  data_.PushBack(v);
  rows_++;
}

void Column::AppendStr(std::string_view v) {
  X100_CHECK(type_ == TypeId::kStr);
  if (dict_) {
    AppendCode(dict_->CodeOf(Value::Str(std::string(v))));
    return;
  }
  data_.PushBack(heap_.Add(v));
  rows_++;
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case TypeId::kF64:
      AppendF64(v.AsF64());
      break;
    case TypeId::kStr:
      AppendStr(v.AsStr());
      break;
    default:
      AppendI64(v.AsI64());
  }
}

void Column::RestoreRaw(TypeId storage, const void* data, int64_t rows) {
  X100_CHECK(rows_ == 0 && (dict_ != nullptr || type_ != TypeId::kStr));
  if (dict_) {
    X100_CHECK(storage == TypeId::kU8 || storage == TypeId::kU16);
  } else {
    X100_CHECK(storage == storage_);
  }
  storage_ = storage;
  data_.Append(data, static_cast<size_t>(rows) * TypeWidth(storage));
  rows_ = rows;
}

int64_t Column::CodeAt(int64_t row) const {
  X100_CHECK(dict_ != nullptr);
  return storage_ == TypeId::kU8 ? data_.At<uint8_t>(row) : data_.At<uint16_t>(row);
}

int64_t Column::GetI64(int64_t row) const {
  if (dict_) return dict_->ValueAt(static_cast<int>(CodeAt(row))).AsI64();
  switch (storage_) {
    case TypeId::kI8:   return data_.At<int8_t>(row);
    case TypeId::kU8:   return data_.At<uint8_t>(row);
    case TypeId::kI16:  return data_.At<int16_t>(row);
    case TypeId::kU16:  return data_.At<uint16_t>(row);
    case TypeId::kI32:
    case TypeId::kDate: return data_.At<int32_t>(row);
    case TypeId::kI64:  return data_.At<int64_t>(row);
    default:
      X100_CHECK(false);
  }
  return 0;
}

double Column::GetF64(int64_t row) const {
  if (dict_) return dict_->ValueAt(static_cast<int>(CodeAt(row))).AsF64();
  if (storage_ == TypeId::kF64) return data_.At<double>(row);
  return static_cast<double>(GetI64(row));
}

const char* Column::GetStr(int64_t row) const {
  X100_CHECK(type_ == TypeId::kStr);
  if (dict_) {
    return static_cast<const char* const*>(dict_->base())[CodeAt(row)];
  }
  return data_.At<const char*>(row);
}

Value Column::GetValue(int64_t row) const {
  switch (type_) {
    case TypeId::kF64:  return Value::F64(GetF64(row));
    case TypeId::kStr:  return Value::Str(GetStr(row));
    case TypeId::kDate: return Value::Date(static_cast<int32_t>(GetI64(row)));
    case TypeId::kI8:   return Value::I8(static_cast<int8_t>(GetI64(row)));
    case TypeId::kU8:   return Value::U8(static_cast<uint8_t>(GetI64(row)));
    case TypeId::kI16:  return Value::I16(static_cast<int16_t>(GetI64(row)));
    case TypeId::kU16:  return Value::U16(static_cast<uint16_t>(GetI64(row)));
    case TypeId::kI32:  return Value::I32(static_cast<int32_t>(GetI64(row)));
    default:            return Value::I64(GetI64(row));
  }
}

}  // namespace x100
