#ifndef X100_STORAGE_TABLE_H_
#define X100_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/summary_index.h"
#include "vector/schema.h"

namespace x100 {

/// A stored relation in vertically fragmented form (§4.3).
///
/// Lifecycle: bulk-load (AppendRow / direct column appends), then Freeze().
/// After Freeze() the vertical fragments are *immutable*: inserts append to
/// uncompressed-layout delta columns, deletes add the #rowId to a deletion
/// list, updates are delete+insert (Figure 8). Reorganize() folds the deltas
/// back into fresh fragments. Summary indices are built on fragments only
/// (they never need maintenance); delta rows are always scanned.
///
/// Every table has a virtual #rowId: fragment rows are 0..F-1, delta rows
/// F..F+D-1. Fetch1Join addresses rows positionally by #rowId.
class Table {
 public:
  struct ColumnSpec {
    std::string name;
    TypeId type;
    bool enum_encoded = false;
  };

  Table(std::string name, std::vector<ColumnSpec> specs);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }  // logical types
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int ColumnIndex(const std::string& name) const;
  const std::vector<ColumnSpec>& specs() const { return specs_; }

  /// Bumped by InstallMerged(); disk chunk files for versions > 0 carry a
  /// ".v<version>" infix so stale cached blocks are never served after a
  /// merge swaps the fragments.
  int64_t fragment_version() const { return fragment_version_; }

  const Column& column(int i) const { return *columns_[i]; }
  Column* load_column(int i) { return columns_[i].get(); }
  const Column& delta_column(int i) const { return *deltas_[i]; }

  // -- loading --
  void AppendRow(const std::vector<Value>& values);
  void Freeze();
  bool frozen() const { return frozen_; }

  // -- row accounting --
  int64_t fragment_rows() const { return fragment_rows_; }
  /// Number of columns that have delta storage (join-index columns do not).
  int num_delta_columns() const { return static_cast<int>(deltas_.size()); }
  int64_t delta_rows() const { return deltas_.empty() ? 0 : deltas_[0]->size(); }
  /// #rowId address space (fragment + delta, including deleted rows).
  int64_t total_rows() const { return fragment_rows_ + delta_rows(); }
  /// Visible rows (total minus deleted).
  int64_t num_rows() const;

  // -- updates (post-Freeze) --
  void Insert(const std::vector<Value>& values);
  Status Delete(int64_t rowid);
  Status Update(int64_t rowid, const std::string& col, const Value& v);

  bool IsDeleted(int64_t rowid) const;
  int64_t num_deleted() const { return static_cast<int64_t>(deleted_sorted_.size()); }
  /// Deletion list, ascending.
  const std::vector<int64_t>& deletion_list() const { return deleted_sorted_; }

  /// Logical point read across fragment and delta regions.
  Value GetValue(int64_t rowid, int col) const;

  /// Folds deltas into fresh immutable fragments; #rowIds are reassigned and
  /// summary indices rebuilt. Join indices referencing this table are stale
  /// afterwards and must be rebuilt by the caller.
  void Reorganize();

  // -- staged merge (MVCC background delta->fragment fold) --
  //
  // Reorganize() mutates in place; under concurrent serving the fold must
  // happen off the reader fence. BuildMerged() does the O(rows) work into
  // private columns (row order preserved: surviving fragment rows then
  // surviving delta rows, so order-insensitive aggregates are bit-identical
  // before and after); InstallMerged() is the short exclusive section that
  // swaps the staged fragments in, recreates empty delta storage, installs
  // prebuilt extra (join-index) columns, rebuilds summary indices, clears
  // the deletion list, and bumps fragment_version().
  struct Merged {
    std::vector<std::unique_ptr<Column>> columns;  // spec columns, in order
    int64_t rows = 0;
  };
  Merged BuildMerged() const;
  void InstallMerged(
      Merged merged,
      std::vector<std::pair<std::string, std::unique_ptr<Column>>> extra);

  /// Widens an enum column's codes u8 -> u16 on fragment and delta together
  /// (MVCC writers call this behind a reader fence when the shared
  /// dictionary outgrows 256 entries) and bumps fragment_version(), since
  /// the fragment's physical bytes changed.
  void WidenEnumCodes(int ci) {
    columns_[ci]->WidenCodesToU16();
    if (!deltas_.empty()) deltas_[ci]->WidenCodesToU16();
    fragment_version_++;
  }

  // -- morsel partitioning (for exchange-parallel scans) --
  struct RowRange {
    int64_t begin, end;
  };
  /// Splits [begin, end) into `num_workers` contiguous morsels and returns
  /// worker `worker`'s share. Split points are floor-aligned to absolute
  /// multiples of `align` (scans pass kSummaryIndexGranule so per-worker
  /// windows line up with summary-index granules); the union over all
  /// workers is exactly [begin, end) and morsels never overlap. Trailing
  /// morsels may be empty when the range is small.
  static RowRange MorselRange(int64_t begin, int64_t end, int worker,
                              int num_workers, int64_t align);

  // -- summary indices (fragment only) --
  void BuildSummaryIndex(const std::string& col_name);
  const SummaryIndex* summary_index(int col) const;

  /// Adds (or refreshes) a join-index column `#ji_<target>` of i64 target
  /// #rowIds, one per row of this table, by joining `fk_col` against
  /// `key_col` of `target` (precomputed foreign-key path, §4.1.2/§5).
  Status BuildJoinIndex(const std::string& fk_col, const Table& target,
                        const std::string& key_col);

  /// Composite-key variant (e.g. lineitem (l_partkey,l_suppkey) -> partsupp).
  Status BuildJoinIndex(const std::vector<std::string>& fk_cols,
                        const Table& target,
                        const std::vector<std::string>& key_cols);
  /// Name of the join-index column for `target`, e.g. "#ji_orders".
  static std::string JoinIndexName(const std::string& target_table);

  // -- serialization support (storage/serialize.cc; not for general use) --
  /// Materializes empty delta columns so they can be restored directly.
  void EnsureDeltaStorage() { EnsureDeltas(); }
  Column* mutable_delta_column(int i) { return deltas_[i].get(); }
  void RestoreDeletionList(std::vector<int64_t> sorted_rowids) {
    deleted_sorted_ = std::move(sorted_rowids);
  }

 private:
  void EnsureDeltas();

  std::string name_;
  Schema schema_;
  std::vector<ColumnSpec> specs_;
  std::vector<std::unique_ptr<Column>> columns_;  // immutable after Freeze()
  std::vector<std::unique_ptr<Column>> deltas_;
  int64_t fragment_rows_ = 0;
  int64_t fragment_version_ = 0;
  bool frozen_ = false;

  std::vector<int64_t> deleted_sorted_;
  std::map<std::string, SummaryIndex> summary_;  // keyed by column name
};

}  // namespace x100

#endif  // X100_STORAGE_TABLE_H_
