#include "storage/summary_index.h"

#include <algorithm>
#include <limits>

namespace x100 {

SummaryIndex SummaryIndex::Build(const Column& col, int granule) {
  X100_CHECK(granule > 0 && IsNumeric(col.type()) && col.type() != TypeId::kStr);
  SummaryIndex idx;
  idx.granule_ = granule;
  idx.rows_ = col.size();
  int64_t nb = (col.size() + granule - 1) / granule;  // number of granules

  idx.prefix_max_.resize(nb + 1);
  idx.suffix_min_.resize(nb + 1);

  idx.prefix_max_[0] = -std::numeric_limits<double>::infinity();
  double run_max = -std::numeric_limits<double>::infinity();
  for (int64_t k = 0; k < nb; k++) {
    int64_t end = std::min<int64_t>((k + 1) * granule, col.size());
    for (int64_t r = k * granule; r < end; r++) run_max = std::max(run_max, col.GetF64(r));
    idx.prefix_max_[k + 1] = run_max;
  }

  idx.suffix_min_[nb] = std::numeric_limits<double>::infinity();
  double run_min = std::numeric_limits<double>::infinity();
  for (int64_t k = nb - 1; k >= 0; k--) {
    int64_t end = std::min<int64_t>((k + 1) * granule, col.size());
    for (int64_t r = k * granule; r < end; r++) run_min = std::min(run_min, col.GetF64(r));
    idx.suffix_min_[k] = run_min;
  }
  return idx;
}

SummaryIndex::RowRange SummaryIndex::Range(double lo, double hi) const {
  // begin: largest boundary k with prefix_max_[k] < lo — rows before k*granule
  // are all < lo. prefix_max_ is nondecreasing: binary search.
  auto pb = std::lower_bound(prefix_max_.begin(), prefix_max_.end(), lo);
  int64_t bk = (pb - prefix_max_.begin());
  bk = bk > 0 ? bk - 1 : 0;
  // end: smallest boundary k with suffix_min_[k] > hi — rows from k*granule on
  // are all > hi. suffix_min_ is nondecreasing: binary search.
  auto se = std::upper_bound(suffix_min_.begin(), suffix_min_.end(), hi);
  int64_t ek = se - suffix_min_.begin();

  int64_t begin = std::min<int64_t>(bk * granule_, rows_);
  int64_t end = std::min<int64_t>(ek * granule_, rows_);
  if (end < begin) end = begin;
  return {begin, end};
}

}  // namespace x100
