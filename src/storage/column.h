#ifndef X100_STORAGE_COLUMN_H_
#define X100_STORAGE_COLUMN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/string_heap.h"
#include "common/types.h"
#include "common/value.h"
#include "storage/buffer.h"

namespace x100 {

/// Dictionary behind an enumeration-typed column (§4.3): the distinct logical
/// values in code order. The decode path is a Fetch1Join on the code column
/// with this array as fetch base.
class Dictionary {
 public:
  explicit Dictionary(TypeId value_type) : value_type_(value_type) {}

  TypeId value_type() const { return value_type_; }
  int size() const { return size_; }

  /// Base pointer for map_fetch primitives: a `double*`, `int32_t*`, ...
  /// or `const char**` array of `size()` logical values.
  const void* base() const { return values_.data(); }

  /// Code for `v`, inserting if new.
  int CodeOf(const Value& v);
  /// Code for `v` if present, else -1 (predicate rewrite uses this).
  int Lookup(const Value& v) const;

  Value ValueAt(int code) const;

 private:
  TypeId value_type_;
  Buffer values_;
  StringHeap heap_;                    // owns string dictionary entries
  std::map<std::string, int> str_lookup_;
  std::map<int64_t, int> int_lookup_;  // f64 keys stored via bit pattern
  int size_ = 0;
};

/// A vertical fragment: one column of a Table, stored contiguously so a Scan
/// can hand out zero-copy vector views. Optionally enumeration-compressed:
/// physical storage is then u8/u16 codes plus a Dictionary (promotion from u8
/// to u16 happens automatically when the 257th distinct value arrives).
class Column {
 public:
  /// `enum_encoded` requests dictionary compression; only sensible for
  /// low-cardinality columns (the generator decides, mirroring the paper's
  /// "using enumeration types where possible").
  explicit Column(TypeId type, bool enum_encoded = false);

  /// Delta column sharing the fragment column's dictionary (and code width),
  /// so fragment and delta vectors decode through the same fetch base.
  Column(TypeId type, Dictionary* shared_dict, TypeId code_type);

  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  TypeId type() const { return type_; }             // logical
  TypeId storage_type() const { return storage_; }  // physical (codes if enum)
  bool is_enum() const { return dict_ != nullptr; }
  const Dictionary* dict() const { return dict_; }
  Dictionary* mutable_dict() { return dict_; }

  int64_t size() const { return rows_; }
  size_t bytes() const { return data_.size_bytes(); }

  /// Physical data: logical values, or codes when is_enum().
  const void* raw() const { return data_.data(); }
  void* mutable_raw() { return data_.data(); }

  /// Pre-reserves physical storage for `rows` values so the data pointer
  /// stays stable while rows up to that count are appended (delta columns
  /// under MVCC: readers hold raw() across concurrent appends below the
  /// reserved capacity).
  void Reserve(int64_t rows) {
    data_.Reserve(static_cast<size_t>(rows) * TypeWidth(storage_));
  }

  // -- appends (logical values) --
  void AppendI64(int64_t v);   // all integral logical types incl. dates
  void AppendF64(double v);
  void AppendStr(std::string_view v);
  void AppendValue(const Value& v);

  /// Bulk-appends `n` physical values (plain fixed-width columns only;
  /// the vectorized load path of Materialize).
  void AppendRaw(const void* data, int64_t n) {
    X100_CHECK(dict_ == nullptr && type_ != TypeId::kStr);
    data_.Append(data, static_cast<size_t>(n) * TypeWidth(storage_));
    rows_ += n;
  }

  // -- logical point reads (delta merge, row engines, result checking) --
  int64_t GetI64(int64_t row) const;
  double GetF64(int64_t row) const;
  const char* GetStr(int64_t row) const;
  Value GetValue(int64_t row) const;

  /// Code at `row`; column must be enum-encoded.
  int64_t CodeAt(int64_t row) const;

  /// Widens u8 codes to u16 in place (no-op if already u16). Shared-dict
  /// delta columns normally keep a fixed code width; MVCC writers call this
  /// on fragment AND delta column together, behind a reader fence, when the
  /// shared dictionary outgrows 256 entries.
  void WidenCodesToU16();

  /// Serialization support (storage/serialize.cc): replaces this column's
  /// physical buffer with `rows` values of physical type `storage` (codes
  /// for enum columns — the dictionary must already be seeded in code
  /// order). Not for general use.
  void RestoreRaw(TypeId storage, const void* data, int64_t rows);

 private:
  void AppendCode(int code);

  TypeId type_;
  TypeId storage_ = TypeId::kI64;
  Buffer data_;
  StringHeap heap_;  // owns bytes of non-enum string columns
  std::unique_ptr<Dictionary> owned_dict_;
  Dictionary* dict_ = nullptr;  // owned_dict_.get() or a shared fragment dict
  bool allow_promote_ = true;   // shared-dict columns keep a fixed code width
  int64_t rows_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_COLUMN_H_
