#include "storage/buffer_pool.h"

#include "common/config.h"
#include "common/metrics.h"

namespace x100 {

namespace {
// Registry mirrors so pool activity shows up in every BENCH_*.json metrics
// snapshot without threading pool pointers around.
struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* read_bytes;
  Counter* retries;
  Gauge* resident;
  static PoolMetrics& Get() {
    static PoolMetrics m = {
        MetricsRegistry::Get().GetCounter("bm.pool.hits"),
        MetricsRegistry::Get().GetCounter("bm.pool.misses"),
        MetricsRegistry::Get().GetCounter("bm.pool.evictions"),
        MetricsRegistry::Get().GetCounter("bm.pool.read_bytes"),
        MetricsRegistry::Get().GetCounter("bm.pool.load_retries"),
        MetricsRegistry::Get().GetGauge("bm.pool.resident_bytes")};
    return m;
  }
};
}  // namespace

int64_t BufferPool::EnvPoolBytes() {
  return EnvByteSize("X100_BM_BYTES", kDefaultPoolBytes);
}

BufferPool::BufferPool(int64_t budget_bytes)
    : budget_(static_cast<size_t>(budget_bytes > 0 ? budget_bytes
                                                   : EnvPoolBytes())) {}

Status BufferPool::GetOrLoad(const std::string& key, size_t bytes,
                             const Loader& loader, Pin* pin, bool* was_hit) {
  std::shared_ptr<Frame> frame;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = frames_.find(key);
      if (it == frames_.end()) break;
      frame = it->second;
      if (frame->loaded) {
        frame->ref_bit = true;  // second chance for the clock hand
        hits_.fetch_add(1, std::memory_order_relaxed);
        PoolMetrics::Get().hits->Inc();
        if (was_hit != nullptr) *was_hit = true;
        *pin = Pin(std::move(frame));
        return Status::OK();
      }
      // Another thread is loading this block; rendezvous on its outcome.
      cv_.wait(lock, [&] { return frame->loaded || frame->failed; });
      if (frame->loaded) continue;  // re-find: the map entry is still ours
      // The load failed and the loader un-cached the key. Do NOT adopt the
      // stale frame's error (or worse, its payload): by the time this
      // waiter woke, another thread may already have re-inserted the key —
      // a fresh load in flight or even completed. Failure resolution is
      // atomic with re-lookup: loop, and either join the new frame's
      // rendezvous or become the retrying loader via the miss path below.
      frame.reset();
      retries_.fetch_add(1, std::memory_order_relaxed);
      PoolMetrics::Get().retries->Inc();
      continue;
    }

    // Miss: claim the key with an unloaded frame, making room first.
    misses_.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().misses->Inc();
    if (was_hit != nullptr) *was_hit = false;
    EvictFor(bytes);
    frame = std::make_shared<Frame>();
    frame->bytes = bytes;
    frame->key = key;
    frame->data = std::make_unique<char[]>(bytes);
    frames_[key] = frame;
    clock_.push_back(frame);
    resident_.fetch_add(bytes, std::memory_order_relaxed);
    PoolMetrics::Get().resident->Set(
        static_cast<double>(resident_.load(std::memory_order_relaxed)));
  }

  // Load outside the lock; other keys proceed concurrently.
  Status s = loader(frame->data.get());

  std::unique_lock<std::mutex> lock(mu_);
  if (s.ok()) {
    frame->loaded = true;
    read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    PoolMetrics::Get().read_bytes->Add(bytes);
    cv_.notify_all();
    *pin = Pin(std::move(frame));
    return Status::OK();
  }
  // Failed: un-cache the frame so a retry reloads.
  frame->failed = true;
  frame->error = s;
  frames_.erase(key);
  for (auto it = clock_.begin(); it != clock_.end(); ++it) {
    if (it->get() == frame.get()) {
      clock_.erase(it);
      break;
    }
  }
  resident_.fetch_sub(frame->bytes, std::memory_order_relaxed);
  PoolMetrics::Get().resident->Set(
      static_cast<double>(resident_.load(std::memory_order_relaxed)));
  cv_.notify_all();
  return s;
}

void BufferPool::EvictFor(size_t need) {
  // Clock / second chance over the frame ring. A frame is evictable when it
  // is loaded and unpinned (use_count == 2: the map's and the ring's refs).
  // Give up after two full sweeps without meeting the budget — everything
  // left is pinned, and correctness requires over-committing rather than
  // refusing the load.
  size_t steps = 2 * clock_.size();
  while (!clock_.empty() &&
         resident_.load(std::memory_order_relaxed) + need > budget_ &&
         steps-- > 0) {
    std::shared_ptr<Frame>& hand = clock_.front();
    bool pinned = hand.use_count() > 2 || !hand->loaded;
    if (pinned || hand->ref_bit) {
      hand->ref_bit = false;
      clock_.splice(clock_.end(), clock_, clock_.begin());
      continue;
    }
    frames_.erase(hand->key);
    resident_.fetch_sub(hand->bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().evictions->Inc();
    clock_.pop_front();
  }
  PoolMetrics::Get().resident->Set(
      static_cast<double>(resident_.load(std::memory_order_relaxed)));
}

void BufferPool::InvalidatePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = clock_.begin(); it != clock_.end();) {
    Frame* f = it->get();
    bool match = f->key.compare(0, prefix.size(), prefix) == 0;
    bool pinned = it->use_count() > 2 || !f->loaded;
    if (match && !pinned) {
      frames_.erase(f->key);
      resident_.fetch_sub(f->bytes, std::memory_order_relaxed);
      it = clock_.erase(it);
    } else {
      ++it;
    }
  }
  PoolMetrics::Get().resident->Set(
      static_cast<double>(resident_.load(std::memory_order_relaxed)));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.load_retries = retries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace x100
