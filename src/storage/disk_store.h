#ifndef X100_STORAGE_DISK_STORE_H_
#define X100_STORAGE_DISK_STORE_H_

// On-disk ColumnBM storage (§4.3): per-column chunk files plus a per-table
// manifest, under one root directory. This is the layer the paper's ColumnBM
// was meant to provide — "large (>1MB) chunks" of vertically fragmented data
// on real files — so the engine's "Disk" hierarchy level is exercised by
// actual I/O rather than a std::map simulation.
//
// Chunk-file layout (one file per column, per-block codec-encoded payloads):
//
//   FileHeader   { magic "X100COL2", version, flags, value_width, crc32 }
//   payload      block 0 bytes ... block N-1 bytes (back to back)
//   footer       N * BlockEntry { offset, bytes, value_count, crc32, codec }
//   FooterTail   { num_blocks, footer_bytes, crc32(entries), magic }
//
// The footer is found from the fixed-size tail at the end of the file, so
// files are written strictly append-only (no seek-back patching). Every
// region is checksummed (CRC-32): the header at open, the footer at open,
// each block's payload on every read from disk.
//
// Format history: v1 ("X100COL1") had no per-block codec id — compressed
// files were FOR throughout, plain files raw. v1 files remain readable
// (OpenMeta infers the codec from the header's compressed flag); new files
// are always written as v2, whose footer entries carry a CodecId per block
// so the freeze path can pick the cheapest codec block by block. Unknown
// codec ids are rejected at open, like any other corruption.
//
// The per-table manifest ("<table>.manifest") lists the table's column files
// with their payload sizes and whole-file checksums, so a table image can be
// validated or shipped as a unit.

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/compression.h"

namespace x100 {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the checksum used by the
/// chunk-file format. `seed` chains incremental computations.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

class DiskStore {
 public:
  struct BlockMeta {
    uint64_t offset = 0;       // payload offset in file
    uint64_t bytes = 0;        // payload size
    int64_t value_count = 0;   // decoded values in the block
    uint32_t crc = 0;          // CRC-32 of the payload
    CodecId codec = CodecId::kRaw;  // how the payload is encoded
  };

  struct FileMeta {
    bool compressed = false;
    size_t value_width = 0;    // bytes per decoded value (0 if raw/unknown)
    std::vector<BlockMeta> blocks;
    uint64_t payload_bytes = 0;  // sum of block payload sizes
  };

  struct ManifestEntry {
    std::string file;          // chunk-file name relative to the root
    uint64_t payload_bytes = 0;
    uint64_t num_blocks = 0;
    uint32_t crc = 0;          // CRC-32 chained over all block payload CRCs
    bool compressed = false;
  };

  /// Creates `root` (one level) if it does not exist.
  explicit DiskStore(std::string root);
  ~DiskStore();

  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  const std::string& root() const { return root_; }
  std::string PathFor(const std::string& name) const;

  /// Append-only writer for one chunk file; obtained from NewFile(). The
  /// file is not readable until Finish() has written the footer.
  class Writer {
   public:
    ~Writer();
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    /// Appends one block's payload (raw column bytes or one codec-encoded
    /// block) and records its footer entry, including the codec id.
    Status AppendBlock(const void* data, size_t bytes, int64_t value_count,
                       CodecId codec = CodecId::kRaw);

    /// Writes the footer + tail and closes the file. Must be called last.
    Status Finish();

   private:
    friend class DiskStore;
    Writer(std::FILE* f, std::string path, bool compressed,
           size_t value_width);

    std::FILE* f_;
    std::string path_;
    std::vector<BlockMeta> blocks_;
    uint64_t offset_;
    bool finished_ = false;
  };

  /// Starts writing chunk file `name` (truncates any previous version).
  /// Returns nullptr (and sets *status) if the file cannot be created.
  std::unique_ptr<Writer> NewFile(const std::string& name, bool compressed,
                                  size_t value_width, Status* status);

  bool Exists(const std::string& name) const;

  /// Reads and verifies the header + footer of `name` into *meta.
  Status OpenMeta(const std::string& name, FileMeta* meta);

  /// Reads block `b`'s payload into `buf` (>= meta.blocks[b].bytes) with
  /// pread and verifies its checksum. Thread-safe; file descriptors are
  /// cached per file.
  Status ReadBlock(const std::string& name, const FileMeta& meta, size_t b,
                   void* buf);

  /// Drops the cached descriptor for `name` (a rewritten file gets a fresh
  /// fd on next read).
  void Forget(const std::string& name);

  // -- per-table manifest --

  Status WriteManifest(const std::string& table,
                       const std::vector<ManifestEntry>& entries);
  Status ReadManifest(const std::string& table,
                      std::vector<ManifestEntry>* out);

  static constexpr char kMagic[8] = {'X', '1', '0', '0', 'C', 'O', 'L', '2'};
  static constexpr char kMagicV1[8] = {'X', '1', '0', '0', 'C', 'O', 'L', '1'};
  static constexpr uint32_t kVersion = 2;
  static constexpr uint32_t kVersionV1 = 1;
  static constexpr uint32_t kFlagCompressed = 1;

 private:
  int FdFor(const std::string& name, Status* status);

  std::string root_;
  mutable std::mutex mu_;          // guards fds_
  std::map<std::string, int> fds_;
};

}  // namespace x100

#endif  // X100_STORAGE_DISK_STORE_H_
