#ifndef X100_STORAGE_CATALOG_H_
#define X100_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace x100 {

/// Named collection of tables — the MetaData box of Figure 5. Plans refer to
/// tables by name; the catalog owns them.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Table* AddTable(std::string name, std::vector<Table::ColumnSpec> specs) {
    auto t = std::make_unique<Table>(name, std::move(specs));
    Table* raw = t.get();
    X100_CHECK(tables_.emplace(std::move(name), std::move(t)).second);
    return raw;
  }

  Table* Find(const std::string& name) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }
  const Table* Find(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  Table& Get(const std::string& name) {
    Table* t = Find(name);
    X100_CHECK(t != nullptr);
    return *t;
  }
  const Table& Get(const std::string& name) const {
    const Table* t = Find(name);
    X100_CHECK(t != nullptr);
    return *t;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    for (const auto& [name, table] : tables_) names.push_back(name);
    return names;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace x100

#endif  // X100_STORAGE_CATALOG_H_
