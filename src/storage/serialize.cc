#include "storage/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "storage/buffer.h"
#include "storage/compression.h"

namespace x100 {

namespace {

// Catalog image format v2: fixed-width column payloads are codec-compressed
// (storage/compression.h) in chunks of kSerializeChunkValues values, each
// chunk tagged with its codec id. v1 images (raw payloads) remain readable.
constexpr char kMagic[8] = {'X', '1', '0', '0', 'C', 'A', 'T', '2'};
constexpr char kMagicV1[8] = {'X', '1', '0', '0', 'C', 'A', 'T', '1'};
constexpr int64_t kSerializeChunkValues = 1 << 16;

class Writer {
 public:
  explicit Writer(FILE* f) : f_(f) {}

  bool ok() const { return ok_; }

  void Bytes(const void* p, size_t n) {
    if (ok_ && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void I64(int64_t v) { Bytes(&v, 8); }
  void F64(double v) { Bytes(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

 private:
  FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(FILE* f) : f_(f) {}

  bool ok() const { return ok_; }

  void Bytes(void* p, size_t n) {
    if (ok_ && std::fread(p, 1, n, f_) != n) ok_ = false;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, 4);
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Bytes(&v, 8);
    return v;
  }
  double F64() {
    double v = 0;
    Bytes(&v, 8);
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!ok_ || n > (1u << 30)) {
      ok_ = false;
      return "";
    }
    std::string s(n, '\0');
    Bytes(s.data(), n);
    return s;
  }

 private:
  FILE* f_;
  bool ok_ = true;
};

void WriteDict(Writer* w, const Dictionary& dict) {
  w->U8(static_cast<uint8_t>(dict.value_type()));
  w->U32(static_cast<uint32_t>(dict.size()));
  for (int c = 0; c < dict.size(); c++) {
    Value v = dict.ValueAt(c);
    switch (dict.value_type()) {
      case TypeId::kStr:
        w->Str(v.AsStr());
        break;
      case TypeId::kF64:
        w->F64(v.AsF64());
        break;
      default:
        w->I64(v.AsI64());
    }
  }
}

void ReadDict(Reader* r, Dictionary* dict) {
  TypeId vt = static_cast<TypeId>(r->U8());
  X100_CHECK(vt == dict->value_type());
  uint32_t n = r->U32();
  for (uint32_t c = 0; c < n && r->ok(); c++) {
    Value v;
    switch (vt) {
      case TypeId::kStr:
        v = Value::Str(r->Str());
        break;
      case TypeId::kF64:
        v = Value::F64(r->F64());
        break;
      case TypeId::kDate:
        v = Value::Date(static_cast<int32_t>(r->I64()));
        break;
      case TypeId::kI32:
        v = Value::I32(static_cast<int32_t>(r->I64()));
        break;
      default:
        v = Value::I64(r->I64());
    }
    int code = dict->CodeOf(v);
    X100_CHECK(code == static_cast<int>(c));  // code order preserved
  }
}

/// Writes a column's physical contents (dictionary handled by the caller for
/// delta columns, which share the fragment dictionary).
void WriteColumnData(Writer* w, const Column& col) {
  w->U8(static_cast<uint8_t>(col.storage_type()));
  if (col.type() == TypeId::kStr && !col.is_enum()) {
    w->I64(col.size());
    for (int64_t i = 0; i < col.size(); i++) {
      const char* s = col.GetStr(i);
      uint32_t len = static_cast<uint32_t>(std::strlen(s));
      w->U32(len);
      w->Bytes(s, len);
    }
  } else {
    w->I64(col.size());
    // Codec-compress the payload chunk-at-a-time; each chunk picks its
    // cheapest codec (raw when nothing beats verbatim bytes).
    const size_t width = TypeWidth(col.storage_type());
    const char* src = static_cast<const char*>(col.raw());
    Buffer enc;
    for (int64_t off = 0; off < col.size(); off += kSerializeChunkValues) {
      int64_t n = std::min(kSerializeChunkValues, col.size() - off);
      CodecId chosen;
      size_t bytes =
          EncodeBestCodec(src + off * width, n, width, &enc, &chosen);
      w->U8(static_cast<uint8_t>(chosen));
      w->U32(static_cast<uint32_t>(bytes));
      w->Bytes(enc.data(), bytes);
    }
  }
}

bool ReadColumnData(Reader* r, Column* col, bool v1) {
  TypeId storage = static_cast<TypeId>(r->U8());
  int64_t rows = r->I64();
  if (!r->ok() || rows < 0) return false;
  if (col->type() == TypeId::kStr && !col->is_enum()) {
    for (int64_t i = 0; i < rows && r->ok(); i++) {
      col->AppendStr(r->Str());
    }
  } else {
    const size_t width = TypeWidth(storage);
    std::vector<char> buf(static_cast<size_t>(rows) * width);
    if (v1) {
      r->Bytes(buf.data(), buf.size());
    } else {
      std::vector<char> enc;
      for (int64_t off = 0; off < rows && r->ok();
           off += kSerializeChunkValues) {
        int64_t n = std::min(kSerializeChunkValues, rows - off);
        const Codec* codec = Codec::ForId(r->U8());
        uint32_t bytes = r->U32();
        if (!r->ok() || codec == nullptr) return false;
        enc.resize(bytes);
        r->Bytes(enc.data(), bytes);
        if (!r->ok()) return false;
        if (codec->Decode(enc.data(), bytes, buf.data() + off * width,
                          width) != n) {
          return false;
        }
      }
    }
    if (!r->ok()) return false;
    if (rows > 0) col->RestoreRaw(storage, buf.data(), rows);
  }
  return r->ok();
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Error("SaveCatalog: cannot open " + path);
  Writer w(f);
  w.Bytes(kMagic, sizeof(kMagic));
  std::vector<std::string> names = catalog.TableNames();
  w.U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Table& t = catalog.Get(name);
    w.Str(name);
    // Specs: only declared columns; join-index columns are derived.
    int ncols = 0;
    while (ncols < t.num_columns() &&
           t.schema().field(ncols).name.rfind("#ji_", 0) != 0) {
      ncols++;
    }
    w.U32(static_cast<uint32_t>(ncols));
    for (int c = 0; c < ncols; c++) {
      w.Str(t.schema().field(c).name);
      w.U8(static_cast<uint8_t>(t.schema().field(c).type));
      w.U8(t.column(c).is_enum() ? 1 : 0);
    }
    for (int c = 0; c < ncols; c++) {
      const Column& col = t.column(c);
      if (col.is_enum()) WriteDict(&w, *col.dict());
      WriteColumnData(&w, col);
    }
    // Deltas.
    w.I64(t.delta_rows());
    if (t.delta_rows() > 0) {
      for (int c = 0; c < ncols; c++) {
        WriteColumnData(&w, t.delta_column(c));
      }
    }
    // Deletion list.
    w.I64(static_cast<int64_t>(t.deletion_list().size()));
    for (int64_t d : t.deletion_list()) w.I64(d);
  }
  bool ok = w.ok();
  ok = std::fclose(f) == 0 && ok;
  return ok ? Status::OK() : Status::Error("SaveCatalog: write failed");
}

std::unique_ptr<Catalog> LoadCatalog(const std::string& path,
                                     std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "LoadCatalog: cannot open " + path;
    return nullptr;
  }
  auto fail = [&](const std::string& msg) -> std::unique_ptr<Catalog> {
    std::fclose(f);
    if (error) *error = msg;
    return nullptr;
  };
  Reader r(f);
  char magic[8];
  r.Bytes(magic, sizeof(magic));
  bool v1 = r.ok() && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
  if (!r.ok() ||
      (!v1 && std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)) {
    return fail("LoadCatalog: bad magic in " + path);
  }
  auto catalog = std::make_unique<Catalog>();
  uint32_t ntables = r.U32();
  if (ntables > 10000) return fail("LoadCatalog: implausible table count");
  for (uint32_t t = 0; t < ntables; t++) {
    std::string name = r.Str();
    uint32_t ncols = r.U32();
    if (!r.ok() || ncols > 10000) return fail("LoadCatalog: truncated header");
    std::vector<Table::ColumnSpec> specs;
    for (uint32_t c = 0; c < ncols; c++) {
      Table::ColumnSpec spec;
      spec.name = r.Str();
      spec.type = static_cast<TypeId>(r.U8());
      spec.enum_encoded = r.U8() != 0;
      specs.push_back(std::move(spec));
    }
    if (!r.ok()) return fail("LoadCatalog: truncated specs");
    Table* table = catalog->AddTable(name, specs);
    for (uint32_t c = 0; c < ncols; c++) {
      Column* col = table->load_column(static_cast<int>(c));
      if (col->is_enum()) ReadDict(&r, col->mutable_dict());
      if (!ReadColumnData(&r, col, v1)) {
        return fail("LoadCatalog: truncated column");
      }
    }
    table->Freeze();
    int64_t delta_rows = r.I64();
    if (delta_rows < 0 || !r.ok()) return fail("LoadCatalog: bad delta count");
    if (delta_rows > 0) {
      table->EnsureDeltaStorage();
      for (uint32_t c = 0; c < ncols; c++) {
        Column* dc = table->mutable_delta_column(static_cast<int>(c));
        if (!ReadColumnData(&r, dc, v1)) {
          return fail("LoadCatalog: truncated delta column");
        }
      }
    }
    int64_t ndel = r.I64();
    if (ndel < 0 || !r.ok()) return fail("LoadCatalog: bad deletion count");
    std::vector<int64_t> dels;
    dels.reserve(static_cast<size_t>(ndel));
    for (int64_t i = 0; i < ndel; i++) dels.push_back(r.I64());
    if (!r.ok()) return fail("LoadCatalog: truncated deletion list");
    table->RestoreDeletionList(std::move(dels));
  }
  std::fclose(f);
  return catalog;
}

}  // namespace x100
