#ifndef X100_STORAGE_SERIALIZE_H_
#define X100_STORAGE_SERIALIZE_H_

#include <memory>
#include <string>

#include "storage/catalog.h"

namespace x100 {

/// Binary persistence for the storage layer — the analogue of MonetDB
/// storing each BAT in a continuous file (§3.2). A catalog is written as one
/// file: per table the column specs, the raw vertical fragments (enum
/// dictionaries + code buffers kept compressed as stored), the delta columns
/// and the deletion list. Summary and join indices are not persisted; they
/// are derived structures the caller rebuilds (they cost no maintenance to
/// begin with, §4.3).
Status SaveCatalog(const Catalog& catalog, const std::string& path);

/// Loads a catalog written by SaveCatalog. Returns null and sets *error on
/// failure (missing file, bad magic, truncation).
std::unique_ptr<Catalog> LoadCatalog(const std::string& path,
                                     std::string* error);

}  // namespace x100

#endif  // X100_STORAGE_SERIALIZE_H_
