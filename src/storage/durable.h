#ifndef X100_STORAGE_DURABLE_H_
#define X100_STORAGE_DURABLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace x100 {

/// Crash-safe, concurrency-safe write path over a Catalog: a WAL for
/// durability, an MvccTable per table for snapshot isolation, periodic
/// checkpoint images, and a background delta->fragment merge.
///
/// Lifecycle:
///   1. Open() — picks the newest `checkpoint-<lsn>.cat` image in wal_dir
///      (falling back to the caller's deterministically rebuilt base
///      catalog) and opens the WAL, truncating any torn tail.
///   2. Caller rebuilds derived structures the image does not carry
///      (summary + join indices) and RegisterJoinIndex()es each `#ji_*`
///      column so appends can maintain it.
///   3. Recover() — replays WAL records with lsn > image lsn through the
///      MvccTables; deterministic, so recovered state is bit-identical to
///      the pre-crash state for every acknowledged write.
///   4. Serve: Append/Delete (group-committed), PinAll() snapshots for
///      queries, background merge, Checkpoint().
///
/// All writers across all tables are serialized by one store-wide mutex:
/// appends read *other* tables to maintain join indices, and total ordering
/// is what makes WAL replay deterministic.
class DurableStore {
 public:
  struct Options {
    std::string wal_dir;  // required
    int64_t group_commit_us = kDefaultWalGroupUs;
    int64_t merge_threshold_rows = kDefaultMergeRows;
    bool background_merge = true;
  };

  static std::unique_ptr<DurableStore> Open(const Options& opts,
                                            std::unique_ptr<Catalog> base,
                                            std::string* error);
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  Catalog* catalog() { return catalog_.get(); }
  const Catalog& catalog() const { return *catalog_; }
  /// Lsn covered by the loaded checkpoint image (0 when starting from base).
  uint64_t image_lsn() const { return image_lsn_; }

  /// Declares (and, if the column is missing, builds) the join index
  /// `#ji_<target>` on `table`. Call between Open() and Recover().
  Status RegisterJoinIndex(const std::string& table,
                           const std::vector<std::string>& fk_cols,
                           const std::string& target,
                           const std::vector<std::string>& key_cols);

  /// Replays the WAL past the image and starts the background merge thread.
  Status Recover();

  /// Appends one row. With `durable`, blocks until the WAL record is
  /// fsync'd (group commit); otherwise returns once applied + buffered.
  /// `*lsn` receives the record's lsn.
  Status Append(const std::string& table, const std::vector<Value>& row,
                bool durable, uint64_t* lsn);

  /// Deletes by #rowId (same durability contract as Append).
  Status Delete(const std::string& table, int64_t rowid, bool durable,
                uint64_t* lsn);

  /// Blocks until every record up to `lsn` is fsync'd — the group-commit
  /// rendezvous for callers that batched non-durable Appends.
  Status WaitDurable(uint64_t lsn) { return wal_->Commit(lsn); }

  /// Pins an epoch-consistent snapshot of every table for one query.
  std::shared_ptr<SnapshotSet> PinAll();

  /// Quiesces writers, writes `checkpoint-<lsn>.cat` (temp-file + rename),
  /// then truncates the WAL. Recovery after this replays nothing older.
  Status Checkpoint();

  /// Merges any table whose published delta exceeds the threshold. Only
  /// tables no other table's join index points at are eligible (a target
  /// merge would reassign the rowids those indices store). Returns the
  /// number of tables merged. The background thread calls this; tests call
  /// it directly.
  int MergeIfNeeded();

  MvccTable* mvcc(const std::string& table);
  uint64_t last_lsn() const { return wal_->last_lsn(); }

 private:
  DurableStore(const Options& opts, std::unique_ptr<Catalog> catalog,
               uint64_t image_lsn);

  Status Apply(const WalRecord& rec);  // replay callback
  void MergeLoop();

  struct JiRegistration {
    std::string table;
    std::vector<std::string> fk_cols;
    std::string target;
    std::vector<std::string> key_cols;
  };

  Options opts_;
  std::unique_ptr<Catalog> catalog_;
  uint64_t image_lsn_ = 0;
  std::unique_ptr<Wal> wal_;
  std::map<std::string, std::unique_ptr<MvccTable>> mvcc_;
  std::vector<JiRegistration> ji_specs_;
  std::map<std::string, bool> is_ji_target_;  // has dependents?

  std::mutex write_mu_;  // store-wide writer serialization

  std::thread merger_;
  std::mutex merge_mu_;
  std::condition_variable merge_cv_;
  bool stop_merge_ = false;
};

}  // namespace x100

#endif  // X100_STORAGE_DURABLE_H_
