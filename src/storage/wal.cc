#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/metrics.h"
#include "storage/disk_store.h"

namespace x100 {

namespace {

struct WalMetrics {
  Counter* appends;
  Counter* commits;
  Counter* fsyncs;
  Counter* bytes;
  Counter* replayed;
  Histogram* commit_wait_us;
  Histogram* group_records;
  static WalMetrics& Get() {
    static WalMetrics m = {
        MetricsRegistry::Get().GetCounter("server.wal.appends"),
        MetricsRegistry::Get().GetCounter("server.wal.commits"),
        MetricsRegistry::Get().GetCounter("server.wal.fsyncs"),
        MetricsRegistry::Get().GetCounter("server.wal.bytes"),
        MetricsRegistry::Get().GetCounter("server.wal.replayed"),
        MetricsRegistry::Get().GetHistogram("server.wal.commit_wait_us"),
        MetricsRegistry::Get().GetHistogram("server.wal.group_records"),
    };
    return m;
  }
};

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::string EncodeFrame(WalRecordType type, uint64_t lsn,
                        const std::string& table, const std::string& body) {
  std::string payload;
  payload.reserve(1 + 8 + 2 + table.size() + body.size());
  payload.push_back(static_cast<char>(type));
  PutU64(&payload, lsn);
  X100_CHECK(table.size() < 65536);
  PutU16(&payload, static_cast<uint16_t>(table.size()));
  payload.append(table);
  payload.append(body);
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

constexpr size_t kFrameHeader = 8;
constexpr size_t kMaxPayload = size_t{64} << 20;

/// Decodes one frame at `data[off..size)`. Returns true and advances *off on
/// success; returns false on a short/invalid frame (caller decides whether
/// that is a torn tail or corruption).
bool DecodeFrame(const char* data, size_t size, size_t* off, WalRecord* rec) {
  if (size - *off < kFrameHeader) return false;
  uint32_t len, crc;
  std::memcpy(&len, data + *off, 4);
  std::memcpy(&crc, data + *off + 4, 4);
  if (len > kMaxPayload || size - *off - kFrameHeader < len) return false;
  const char* payload = data + *off + kFrameHeader;
  if (Crc32(payload, len) != crc) return false;
  if (len < 1 + 8 + 2) return false;
  uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type < 1 || type > 4) return false;
  uint64_t lsn;
  uint16_t table_len;
  std::memcpy(&lsn, payload + 1, 8);
  std::memcpy(&table_len, payload + 9, 2);
  if (size_t{11} + table_len > len) return false;
  rec->type = static_cast<WalRecordType>(type);
  rec->lsn = lsn;
  rec->table.assign(payload + 11, table_len);
  rec->body.assign(payload + 11 + table_len, len - 11 - table_len);
  *off += kFrameHeader + len;
  return true;
}

std::string SegmentName(uint64_t first_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Error("wal: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(sz < 0 ? 0 : static_cast<size_t>(sz));
  if (!out->empty() && std::fread(out->data(), 1, out->size(), f) != out->size()) {
    std::fclose(f);
    return Status::Error("wal: short read on " + path);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace

Wal::Wal(const Options& opts) : opts_(opts) {}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_pending_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Wal> Wal::Open(const Options& opts, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(opts.dir, ec);
  if (ec) {
    *error = "wal: cannot create dir " + opts.dir + ": " + ec.message();
    return nullptr;
  }
  std::unique_ptr<Wal> w(new Wal(opts));
  Status s = w->ScanExisting(error);
  if (!s.ok()) {
    *error = s.message();
    return nullptr;
  }
  w->flusher_ = std::thread([p = w.get()] { p->FlusherLoop(); });
  return w;
}

Status Wal::ScanExisting(std::string* error) {
  (void)error;
  segments_.clear();
  for (const auto& e : std::filesystem::directory_iterator(opts_.dir)) {
    std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 4) == ".log") {
      segments_.push_back(e.path().string());
    }
  }
  std::sort(segments_.begin(), segments_.end());

  uint64_t max_lsn = 0;
  for (size_t i = 0; i < segments_.size(); i++) {
    std::string bytes;
    Status s = ReadWholeFile(segments_[i], &bytes);
    if (!s.ok()) return s;
    size_t off = 0;
    WalRecord rec;
    while (DecodeFrame(bytes.data(), bytes.size(), &off, &rec)) {
      max_lsn = std::max(max_lsn, rec.lsn);
    }
    if (off != bytes.size()) {
      if (i + 1 != segments_.size()) {
        return Status::Error("wal: corrupt frame mid-log in " + segments_[i]);
      }
      // Torn tail on the last segment: a crash mid-write. Truncate to the
      // valid prefix; the lost suffix was never acknowledged durable.
      if (::truncate(segments_[i].c_str(), static_cast<off_t>(off)) != 0) {
        return Status::Error("wal: cannot truncate torn tail of " +
                             segments_[i]);
      }
    }
  }
  next_lsn_ = max_lsn + 1;
  durable_lsn_ = max_lsn;

  if (segments_.empty()) {
    return OpenSegment(next_lsn_);
  }
  // Append to the last segment.
  fd_ = ::open(segments_.back().c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return Status::Error("wal: cannot open " + segments_.back());
  struct stat st;
  segment_written_ =
      (::fstat(fd_, &st) == 0) ? static_cast<size_t>(st.st_size) : 0;
  return Status::OK();
}

Status Wal::OpenSegment(uint64_t first_lsn) {
  std::string path =
      (std::filesystem::path(opts_.dir) / SegmentName(first_lsn)).string();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::Error("wal: cannot create " + path);
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_written_ = 0;
  segments_.push_back(path);
  return Status::OK();
}

uint64_t Wal::Append(WalRecordType type, const std::string& table,
                     std::string body) {
  WalMetrics::Get().appends->Inc();
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t lsn = next_lsn_++;
  pending_.append(EncodeFrame(type, lsn, table, body));
  pending_last_lsn_ = lsn;
  cv_pending_.notify_one();
  return lsn;
}

Status Wal::Commit(uint64_t lsn) {
  auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(mu_);
  cv_durable_.wait(lk, [&] { return durable_lsn_ >= lsn || !io_error_.empty(); });
  if (!io_error_.empty() && durable_lsn_ < lsn) {
    return Status::Error(io_error_);
  }
  lk.unlock();
  WalMetrics::Get().commits->Inc();
  WalMetrics::Get().commit_wait_us->Record(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return Status::OK();
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_pending_.wait(lk, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    if (opts_.group_commit_us > 0) {
      // Group window: let concurrent appenders join this batch.
      lk.unlock();
      ::usleep(static_cast<useconds_t>(opts_.group_commit_us));
      lk.lock();
    }
    std::string batch = std::move(pending_);
    pending_.clear();
    uint64_t batch_last = pending_last_lsn_;
    uint64_t batch_first = durable_lsn_ + 1;
    lk.unlock();

    Status s = WriteAndSync(batch, batch_last);
    WalMetrics::Get().group_records->Record(
        static_cast<int64_t>(batch_last - batch_first + 1));

    lk.lock();
    if (s.ok()) {
      durable_lsn_ = batch_last;
    } else if (io_error_.empty()) {
      io_error_ = s.message();
    }
    cv_durable_.notify_all();
    if (stop_ && pending_.empty()) return;
  }
}

Status Wal::WriteAndSync(const std::string& bytes, uint64_t batch_last_lsn) {
  std::lock_guard<std::mutex> io(io_mu_);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error("wal: write failed: " +
                           std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::Error("wal: fsync failed: " +
                         std::string(std::strerror(errno)));
  }
  WalMetrics::Get().fsyncs->Inc();
  WalMetrics::Get().bytes->Add(static_cast<int64_t>(bytes.size()));
  segment_written_ += bytes.size();
  if (segment_written_ >= opts_.segment_bytes) {
    return OpenSegment(batch_last_lsn + 1);
  }
  return Status::OK();
}

Status Wal::Checkpoint(uint64_t image_lsn) {
  uint64_t lsn = Append(WalRecordType::kCheckpoint, "", "");
  Status s = Commit(lsn);
  if (!s.ok()) return s;
  // Rotate so old segments hold only records covered by the image, then
  // drop them. The caller quiesced writers, so nothing lands in the old
  // segments between the commit above and the rotation here.
  std::lock_guard<std::mutex> io(io_mu_);
  std::vector<std::string> old;
  old.swap(segments_);
  Status rot = OpenSegment(lsn + 1);
  if (!rot.ok()) {
    segments_ = std::move(old);
    return rot;
  }
  for (const std::string& path : old) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  (void)image_lsn;
  return Status::OK();
}

Status Wal::Replay(uint64_t after_lsn,
                   const std::function<Status(const WalRecord&)>& fn) const {
  for (size_t i = 0; i < segments_.size(); i++) {
    std::string bytes;
    Status s = ReadWholeFile(segments_[i], &bytes);
    if (!s.ok()) return s;
    size_t off = 0;
    WalRecord rec;
    while (DecodeFrame(bytes.data(), bytes.size(), &off, &rec)) {
      if (rec.lsn <= after_lsn) continue;
      Status rs = fn(rec);
      if (!rs.ok()) return rs;
      WalMetrics::Get().replayed->Inc();
    }
    // ScanExisting truncated any torn tail before Replay can run.
    if (off != bytes.size()) {
      return Status::Error("wal: corrupt frame during replay in " +
                           segments_[i]);
    }
  }
  return Status::OK();
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_ - 1;
}

uint64_t Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_lsn_;
}

}  // namespace x100
