#include "storage/compression.h"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace x100 {

namespace {

struct ForHeader {
  int64_t reference;
  uint16_t bits;
  uint16_t reserved;
  uint32_t count;
};
static_assert(sizeof(ForHeader) == ForCodec::kHeaderBytes);

struct PdictHeader {
  uint32_t count;
  uint32_t dict_size;
  uint16_t bits;
  uint16_t reserved;
  uint32_t reserved2;
};
static_assert(sizeof(PdictHeader) == PdictCodec::kHeaderBytes);

struct RleHeader {
  uint32_t count;
  uint32_t num_runs;
  uint64_t reserved;
};
static_assert(sizeof(RleHeader) == RleCodec::kHeaderBytes);

struct PfordHeader {
  int64_t base;
  int64_t reference;  // minimum delta, unsigned domain
  uint32_t count;
  uint32_t num_exceptions;
  uint16_t bits;
  uint16_t reserved;
  uint32_t reserved2;
};
static_assert(sizeof(PfordHeader) == PforDeltaCodec::kHeaderBytes);

template <typename T>
void MinMax(const T* in, int64_t n, int64_t* lo, int64_t* hi) {
  if (n == 0) {
    *lo = *hi = 0;
    return;
  }
  T mn = in[0], mx = in[0];
  for (int64_t i = 1; i < n; i++) {
    mn = std::min(mn, in[i]);
    mx = std::max(mx, in[i]);
  }
  *lo = static_cast<int64_t>(mn);
  *hi = static_cast<int64_t>(mx);
}

int BitsFor(uint64_t range) {
  int bits = 0;
  while (range != 0) {
    bits++;
    range >>= 1;
  }
  return bits;
}

size_t WordsFor(int64_t n, int bits) {
  return (static_cast<size_t>(n) * bits + 63) / 64;
}

/// Packs the low `bits` of each delta into consecutive 64-bit words.
template <typename T>
void Pack(const T* in, int64_t n, int64_t ref, int bits, uint64_t* words) {
  uint64_t acc = 0;
  int filled = 0;
  size_t w = 0;
  for (int64_t i = 0; i < n; i++) {
    // Unsigned subtraction: value - ref can exceed INT64_MAX (e.g. a block
    // spanning INT64_MIN..INT64_MAX), where the signed form would overflow.
    uint64_t delta = static_cast<uint64_t>(static_cast<int64_t>(in[i])) -
                     static_cast<uint64_t>(ref);
    acc |= delta << filled;
    if (filled + bits >= 64) {
      words[w++] = acc;
      int used = 64 - filled;
      acc = used < bits ? delta >> used : 0;
      filled = bits - used;
    } else {
      filled += bits;
    }
  }
  if (filled > 0) words[w++] = acc;
}

template <typename T>
void Unpack(const uint64_t* words, int64_t n, int64_t ref, int bits, T* out) {
  if (bits == 0) {
    for (int64_t i = 0; i < n; i++) out[i] = static_cast<T>(ref);
    return;
  }
  const uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  uint64_t acc = words[0];
  int avail = 64;
  size_t w = 0;
  for (int64_t i = 0; i < n; i++) {
    uint64_t delta;
    if (avail >= bits) {
      delta = acc & mask;
      // Shifting a uint64 by 64 is UB; guard the exactly-consumed case.
      acc = bits < 64 ? acc >> bits : 0;
      avail -= bits;
    } else {
      uint64_t lo = acc;
      uint64_t hi = words[++w];
      delta = (lo | (hi << avail)) & mask;
      int taken = bits - avail;
      acc = taken < 64 ? hi >> taken : 0;
      avail = 64 - taken;
    }
    // Unsigned addition mirrors Pack's unsigned subtraction (two's-complement
    // wraparound is the identity here; the signed form would overflow).
    out[i] = static_cast<T>(
        static_cast<int64_t>(static_cast<uint64_t>(ref) + delta));
  }
}

// ---------------------------------------------------------------- FOR

template <typename T>
size_t ForEncodeTyped(const T* in, int64_t n, Buffer* out) {
  int64_t lo, hi;
  MinMax(in, n, &lo, &hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int bits = BitsFor(range);
  size_t nwords = WordsFor(n, bits);
  ForHeader h{lo, static_cast<uint16_t>(bits), 0, static_cast<uint32_t>(n)};
  size_t total = sizeof(ForHeader) + nwords * 8;
  size_t start = out->size_bytes();
  out->Reserve(start + total);
  out->Append(&h, sizeof(h));
  if (nwords > 0) {
    // Pack into a scratch then append (keeps Pack simple).
    std::vector<uint64_t> words(nwords, 0);
    Pack(in, n, lo, bits, words.data());
    out->Append(words.data(), nwords * 8);
  }
  return total;
}

template <typename T>
int64_t ForDecodeTyped(const void* encoded, T* out) {
  ForHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  const uint64_t* words = reinterpret_cast<const uint64_t*>(
      static_cast<const char*>(encoded) + sizeof(ForHeader));
  Unpack(words, h.count, h.reference, h.bits, out);
  return h.count;
}

// ---------------------------------------------------------------- PDICT

// Dictionary bytes are padded to an 8-byte boundary so the code words that
// follow stay 8-aligned (blocks themselves start aligned; Unpack reads
// uint64s directly).
size_t PaddedDictBytes(size_t dict_size, size_t width) {
  return (dict_size * width + 7) & ~size_t{7};
}

template <typename T>
size_t PdictEncodeTyped(const T* in, int64_t n, Buffer* out) {
  std::vector<T> dict(in, in + n);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  int bits = dict.size() > 1 ? BitsFor(dict.size() - 1) : 0;
  std::vector<uint32_t> codes(n);
  for (int64_t i = 0; i < n; i++) {
    codes[i] = static_cast<uint32_t>(
        std::lower_bound(dict.begin(), dict.end(), in[i]) - dict.begin());
  }
  size_t dict_bytes = PaddedDictBytes(dict.size(), sizeof(T));
  size_t nwords = WordsFor(n, bits);
  PdictHeader h{static_cast<uint32_t>(n), static_cast<uint32_t>(dict.size()),
                static_cast<uint16_t>(bits), 0, 0};
  size_t total = sizeof(h) + dict_bytes + nwords * 8;
  out->Reserve(out->size_bytes() + total);
  out->Append(&h, sizeof(h));
  if (!dict.empty()) out->Append(dict.data(), dict.size() * sizeof(T));
  static const char kPad[8] = {0};
  out->Append(kPad, dict_bytes - dict.size() * sizeof(T));
  if (nwords > 0) {
    std::vector<uint64_t> words(nwords, 0);
    Pack(codes.data(), n, 0, bits, words.data());
    out->Append(words.data(), nwords * 8);
  }
  return total;
}

template <typename T>
int64_t PdictDecodeTyped(const void* encoded, T* out) {
  PdictHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  const T* dict = reinterpret_cast<const T*>(static_cast<const char*>(encoded) +
                                             sizeof(h));
  const uint64_t* words = reinterpret_cast<const uint64_t*>(
      static_cast<const char*>(encoded) + sizeof(h) +
      PaddedDictBytes(h.dict_size, sizeof(T)));
  int64_t n = h.count;
  std::vector<uint32_t> codes(n);
  Unpack(words, n, 0, h.bits, codes.data());
  for (int64_t i = 0; i < n; i++) out[i] = dict[codes[i]];
  return n;
}

// ---------------------------------------------------------------- RLE

template <typename T>
size_t RleEncodeTyped(const T* in, int64_t n, Buffer* out) {
  // First pass counts runs so the header can be written before the payload.
  uint32_t num_runs = 0;
  for (int64_t i = 0; i < n;) {
    int64_t j = i + 1;
    while (j < n && in[j] == in[i]) j++;
    num_runs++;
    i = j;
  }
  RleHeader h{static_cast<uint32_t>(n), num_runs, 0};
  size_t total =
      sizeof(h) + static_cast<size_t>(num_runs) * RleCodec::kRunBytes;
  out->Reserve(out->size_bytes() + total);
  out->Append(&h, sizeof(h));
  for (int64_t i = 0; i < n;) {
    int64_t j = i + 1;
    while (j < n && in[j] == in[i]) j++;
    int64_t value = static_cast<int64_t>(in[i]);
    uint32_t len = static_cast<uint32_t>(j - i);
    char run[RleCodec::kRunBytes];
    std::memcpy(run, &value, 8);
    std::memcpy(run + 8, &len, 4);
    out->Append(run, sizeof(run));
    i = j;
  }
  return total;
}

template <typename T>
int64_t RleDecodeTyped(const void* encoded, T* out) {
  RleHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  const char* runs = static_cast<const char*>(encoded) + sizeof(h);
  int64_t pos = 0;
  for (uint32_t r = 0; r < h.num_runs; r++) {
    int64_t value;
    uint32_t len;
    std::memcpy(&value, runs + r * RleCodec::kRunBytes, 8);
    std::memcpy(&len, runs + r * RleCodec::kRunBytes + 8, 4);
    T v = static_cast<T>(value);
    for (uint32_t k = 0; k < len; k++) out[pos++] = v;
  }
  return h.count;
}

// ---------------------------------------------------------------- PFOR-delta

template <typename T>
size_t PfordEncodeTyped(const T* in, int64_t n, Buffer* out) {
  using U = std::make_unsigned_t<T>;
  PfordHeader h{};
  h.count = static_cast<uint32_t>(n);
  if (n == 0) {
    out->Append(&h, sizeof(h));
    return sizeof(h);
  }
  h.base = static_cast<int64_t>(in[0]);
  // Deltas in the physical width's modular domain: any successor value is
  // reachable by adding a value in [0, 2^(8*width)), so decode's wrapping
  // prefix sum reconstructs exactly (INT64_MIN after INT64_MAX included).
  int64_t nd = n - 1;
  std::vector<uint64_t> deltas(nd);
  for (int64_t i = 0; i < nd; i++) {
    deltas[i] = static_cast<uint64_t>(
        static_cast<U>(static_cast<U>(in[i + 1]) - static_cast<U>(in[i])));
  }
  uint64_t ref = nd > 0 ? *std::min_element(deltas.begin(), deltas.end()) : 0;
  // Pick the packed width minimizing words + exception bytes over the
  // bit-length histogram of the adjusted deltas.
  int64_t hist[65] = {0};
  for (int64_t i = 0; i < nd; i++) hist[BitsFor(deltas[i] - ref)]++;
  int best_bits = 64;
  size_t best_cost = WordsFor(nd, 64) * 8;
  int64_t exc = nd;  // deltas whose bit length exceeds b
  for (int b = 0; b <= 64; b++) {
    exc -= hist[b];
    size_t cost = WordsFor(nd, b) * 8 +
                  static_cast<size_t>(exc) * PforDeltaCodec::kExceptionBytes;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = b;
    }
  }
  int bits = best_bits;
  uint64_t limit = bits == 64 ? ~uint64_t{0}
                              : (bits == 0 ? 0 : (uint64_t{1} << bits) - 1);
  std::vector<uint64_t> packvals(nd);
  std::vector<std::pair<uint32_t, int64_t>> exceptions;
  for (int64_t i = 0; i < nd; i++) {
    uint64_t adj = deltas[i] - ref;
    if (adj > limit) {
      packvals[i] = 0;
      exceptions.emplace_back(static_cast<uint32_t>(i),
                              static_cast<int64_t>(deltas[i]));
    } else {
      packvals[i] = adj;
    }
  }
  h.reference = static_cast<int64_t>(ref);
  h.num_exceptions = static_cast<uint32_t>(exceptions.size());
  h.bits = static_cast<uint16_t>(bits);
  size_t nwords = WordsFor(nd, bits);
  size_t total = sizeof(h) + nwords * 8 +
                 exceptions.size() * PforDeltaCodec::kExceptionBytes;
  out->Reserve(out->size_bytes() + total);
  out->Append(&h, sizeof(h));
  if (nwords > 0) {
    std::vector<uint64_t> words(nwords, 0);
    Pack(packvals.data(), nd, 0, bits, words.data());
    out->Append(words.data(), nwords * 8);
  }
  for (const auto& [pos, delta] : exceptions) {
    char e[PforDeltaCodec::kExceptionBytes];
    std::memcpy(e, &pos, 4);
    std::memcpy(e + 4, &delta, 8);
    out->Append(e, sizeof(e));
  }
  return total;
}

template <typename T>
int64_t PfordDecodeTyped(const void* encoded, T* out) {
  using U = std::make_unsigned_t<T>;
  PfordHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  int64_t n = h.count;
  if (n == 0) return 0;
  out[0] = static_cast<T>(h.base);
  if (n == 1) return 1;
  int64_t nd = n - 1;
  const char* p = static_cast<const char*>(encoded) + sizeof(h);
  const uint64_t* words = reinterpret_cast<const uint64_t*>(p);
  size_t nwords = WordsFor(nd, h.bits);
  std::vector<uint64_t> deltas(nd);
  Unpack(words, nd, 0, h.bits, deltas.data());
  uint64_t ref = static_cast<uint64_t>(h.reference);
  for (int64_t i = 0; i < nd; i++) deltas[i] += ref;
  const char* exc = p + nwords * 8;
  for (uint32_t e = 0; e < h.num_exceptions; e++) {
    uint32_t pos;
    int64_t delta;
    std::memcpy(&pos, exc + e * PforDeltaCodec::kExceptionBytes, 4);
    std::memcpy(&delta, exc + e * PforDeltaCodec::kExceptionBytes + 4, 8);
    deltas[pos] = static_cast<uint64_t>(delta);
  }
  U cur = static_cast<U>(out[0]);
  for (int64_t i = 0; i < nd; i++) {
    cur = static_cast<U>(cur + static_cast<U>(deltas[i]));
    out[i + 1] = static_cast<T>(cur);
  }
  return n;
}

// ------------------------------------------------------- width dispatch

#define X100_WIDTH_SWITCH(expr_t)                \
  switch (width) {                               \
    case 1: return expr_t(int8_t);               \
    case 2: return expr_t(int16_t);              \
    case 4: return expr_t(int32_t);              \
    case 8: return expr_t(int64_t);              \
    default: X100_CHECK(false); return 0;        \
  }

// ------------------------------------------------------- Codec impls

class RawCodecImpl : public Codec {
 public:
  CodecId id() const override { return CodecId::kRaw; }
  const char* name() const override { return "raw"; }
  size_t MaxEncodedBytes(int64_t n, size_t width) const override {
    return static_cast<size_t>(n) * width;
  }
  size_t Encode(const void* in, int64_t n, size_t width,
                Buffer* out) const override {
    size_t bytes = static_cast<size_t>(n) * width;
    if (bytes > 0) out->Append(in, bytes);
    return bytes;
  }
  int64_t Decode(const void* encoded, size_t encoded_bytes, void* out,
                 size_t width) const override {
    if (encoded_bytes > 0) std::memcpy(out, encoded, encoded_bytes);
    return static_cast<int64_t>(encoded_bytes / width);
  }
  int64_t EncodedCount(const void* /*encoded*/, size_t encoded_bytes,
                       size_t width) const override {
    return static_cast<int64_t>(encoded_bytes / width);
  }
};

class ForCodecImpl : public Codec {
 public:
  CodecId id() const override { return CodecId::kFor; }
  const char* name() const override { return "for"; }
  size_t MaxEncodedBytes(int64_t n, size_t /*width*/) const override {
    return ForCodec::MaxEncodedBytes(n);
  }
  size_t Encode(const void* in, int64_t n, size_t width,
                Buffer* out) const override {
    return ForCodec::Encode(in, n, width, out);
  }
  int64_t Decode(const void* encoded, size_t /*encoded_bytes*/, void* out,
                 size_t width) const override {
    return ForCodec::Decode(encoded, out, width);
  }
  int64_t EncodedCount(const void* encoded, size_t /*encoded_bytes*/,
                       size_t /*width*/) const override {
    return ForCodec::EncodedCount(encoded);
  }
};

class PdictCodecImpl : public Codec {
 public:
  CodecId id() const override { return CodecId::kPdict; }
  const char* name() const override { return "pdict"; }
  size_t MaxEncodedBytes(int64_t n, size_t width) const override {
    // Worst case: all values distinct (full-width dictionary) + 32-bit codes.
    return PdictCodec::kHeaderBytes + PaddedDictBytes(n, width) +
           WordsFor(n, 32) * 8 + 8;
  }
  size_t Encode(const void* in, int64_t n, size_t width,
                Buffer* out) const override {
    X100_CHECK(n >= 0 && n <= static_cast<int64_t>(UINT32_MAX));
#define X100_EXPR(T) PdictEncodeTyped(static_cast<const T*>(in), n, out)
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t Decode(const void* encoded, size_t /*encoded_bytes*/, void* out,
                 size_t width) const override {
#define X100_EXPR(T) PdictDecodeTyped(encoded, static_cast<T*>(out))
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t EncodedCount(const void* encoded, size_t /*encoded_bytes*/,
                       size_t /*width*/) const override {
    PdictHeader h;
    std::memcpy(&h, encoded, sizeof(h));
    return h.count;
  }
};

class RleCodecImpl : public Codec {
 public:
  CodecId id() const override { return CodecId::kRle; }
  const char* name() const override { return "rle"; }
  size_t MaxEncodedBytes(int64_t n, size_t /*width*/) const override {
    return RleCodec::kHeaderBytes +
           static_cast<size_t>(n) * RleCodec::kRunBytes;
  }
  size_t Encode(const void* in, int64_t n, size_t width,
                Buffer* out) const override {
    X100_CHECK(n >= 0 && n <= static_cast<int64_t>(UINT32_MAX));
#define X100_EXPR(T) RleEncodeTyped(static_cast<const T*>(in), n, out)
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t Decode(const void* encoded, size_t /*encoded_bytes*/, void* out,
                 size_t width) const override {
#define X100_EXPR(T) RleDecodeTyped(encoded, static_cast<T*>(out))
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t EncodedCount(const void* encoded, size_t /*encoded_bytes*/,
                       size_t /*width*/) const override {
    RleHeader h;
    std::memcpy(&h, encoded, sizeof(h));
    return h.count;
  }
};

class PforDeltaCodecImpl : public Codec {
 public:
  CodecId id() const override { return CodecId::kPforDelta; }
  const char* name() const override { return "pford"; }
  size_t MaxEncodedBytes(int64_t n, size_t /*width*/) const override {
    return PforDeltaCodec::kHeaderBytes + WordsFor(n, 64) * 8 +
           static_cast<size_t>(n) * PforDeltaCodec::kExceptionBytes + 8;
  }
  size_t Encode(const void* in, int64_t n, size_t width,
                Buffer* out) const override {
    X100_CHECK(n >= 0 && n <= static_cast<int64_t>(UINT32_MAX));
#define X100_EXPR(T) PfordEncodeTyped(static_cast<const T*>(in), n, out)
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t Decode(const void* encoded, size_t /*encoded_bytes*/, void* out,
                 size_t width) const override {
#define X100_EXPR(T) PfordDecodeTyped(encoded, static_cast<T*>(out))
    X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
  }
  int64_t EncodedCount(const void* encoded, size_t /*encoded_bytes*/,
                       size_t /*width*/) const override {
    PfordHeader h;
    std::memcpy(&h, encoded, sizeof(h));
    return h.count;
  }
};

const RawCodecImpl kRawCodec;
const ForCodecImpl kForCodecImpl;
const PdictCodecImpl kPdictCodec;
const RleCodecImpl kRleCodec;
const PforDeltaCodecImpl kPforDeltaCodec;

const Codec* const kAllCodecs[kNumCodecs] = {
    &kRawCodec, &kForCodecImpl, &kPdictCodec, &kRleCodec, &kPforDeltaCodec,
};

}  // namespace

const Codec* Codec::ForId(CodecId id) {
  uint8_t v = static_cast<uint8_t>(id);
  if (v >= kNumCodecs) return nullptr;
  return kAllCodecs[v];
}

const Codec* const* Codec::All() { return kAllCodecs; }

const char* Codec::Name(CodecId id) {
  const Codec* c = ForId(id);
  return c != nullptr ? c->name() : "unknown";
}

CodecId PickCodec(const void* in, int64_t n, size_t width,
                  int64_t sample_limit) {
  // Empty blocks keep the header-only FOR representation (count stays
  // readable without a byte-count side channel special case).
  if (n == 0) return CodecId::kFor;
  int64_t sample_n = std::min(n, sample_limit);
  size_t raw_bytes = static_cast<size_t>(sample_n) * width;
  CodecId best = CodecId::kRaw;
  size_t best_bytes = raw_bytes;
  Buffer scratch;
  for (CodecId id : {CodecId::kFor, CodecId::kRle, CodecId::kPdict,
                     CodecId::kPforDelta}) {
    scratch.Clear();
    size_t bytes = Codec::ForId(id)->Encode(in, sample_n, width, &scratch);
    if (bytes < best_bytes) {
      best_bytes = bytes;
      best = id;
    }
  }
  return best;
}

size_t EncodeBestCodec(const void* in, int64_t n, size_t width, Buffer* out,
                       CodecId* chosen) {
  if (n == 0) {
    *chosen = CodecId::kFor;
    return ForCodec::Encode(in, 0, width, out);
  }
  CodecId id = PickCodec(in, n, width);
  size_t raw_bytes = static_cast<size_t>(n) * width;
  if (id != CodecId::kRaw) {
    // Encode into a scratch first: sampling can over-promise (e.g. a prefix
    // whose dictionary stays small while the tail's explodes), and the block
    // must never be stored larger than verbatim.
    Buffer scratch;
    size_t bytes = Codec::ForId(id)->Encode(in, n, width, &scratch);
    if (bytes < raw_bytes) {
      out->Append(scratch.data(), bytes);
      *chosen = id;
      return bytes;
    }
  }
  out->Append(in, raw_bytes);
  *chosen = CodecId::kRaw;
  return raw_bytes;
}

size_t ForCodec::Encode(const void* in, int64_t n, size_t width, Buffer* out) {
  // n == 0 is legal: a header-only block (reference 0, bits 0, count 0) that
  // round-trips to zero values. Lets stores of empty columns write one block
  // rather than special-case emptiness.
  X100_CHECK(n >= 0 && n <= static_cast<int64_t>(UINT32_MAX));
#define X100_EXPR(T) ForEncodeTyped(static_cast<const T*>(in), n, out)
  X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
}

int64_t ForCodec::Decode(const void* encoded, void* out, size_t width) {
#define X100_EXPR(T) ForDecodeTyped(encoded, static_cast<T*>(out))
  X100_WIDTH_SWITCH(X100_EXPR)
#undef X100_EXPR
}

int64_t ForCodec::EncodedCount(const void* encoded) {
  ForHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  return h.count;
}

size_t ForCodec::EncodedBytes(const void* encoded) {
  ForHeader h;
  std::memcpy(&h, encoded, sizeof(h));
  return sizeof(ForHeader) +
         (static_cast<size_t>(h.count) * h.bits + 63) / 64 * 8;
}

}  // namespace x100
