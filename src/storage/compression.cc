#include "storage/compression.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace x100 {

namespace {

struct Header {
  int64_t reference;
  uint16_t bits;
  uint16_t reserved;
  uint32_t count;
};
static_assert(sizeof(Header) == ForCodec::kHeaderBytes);

template <typename T>
void MinMax(const T* in, int64_t n, int64_t* lo, int64_t* hi) {
  if (n == 0) {
    *lo = *hi = 0;
    return;
  }
  T mn = in[0], mx = in[0];
  for (int64_t i = 1; i < n; i++) {
    mn = std::min(mn, in[i]);
    mx = std::max(mx, in[i]);
  }
  *lo = static_cast<int64_t>(mn);
  *hi = static_cast<int64_t>(mx);
}

int BitsFor(uint64_t range) {
  int bits = 0;
  while (range != 0) {
    bits++;
    range >>= 1;
  }
  return bits;
}

/// Packs the low `bits` of each delta into consecutive 64-bit words.
template <typename T>
void Pack(const T* in, int64_t n, int64_t ref, int bits, uint64_t* words) {
  uint64_t acc = 0;
  int filled = 0;
  size_t w = 0;
  for (int64_t i = 0; i < n; i++) {
    // Unsigned subtraction: value - ref can exceed INT64_MAX (e.g. a block
    // spanning INT64_MIN..INT64_MAX), where the signed form would overflow.
    uint64_t delta = static_cast<uint64_t>(static_cast<int64_t>(in[i])) -
                     static_cast<uint64_t>(ref);
    acc |= delta << filled;
    if (filled + bits >= 64) {
      words[w++] = acc;
      int used = 64 - filled;
      acc = used < bits ? delta >> used : 0;
      filled = bits - used;
    } else {
      filled += bits;
    }
  }
  if (filled > 0) words[w++] = acc;
}

template <typename T>
void Unpack(const uint64_t* words, int64_t n, int64_t ref, int bits, T* out) {
  if (bits == 0) {
    for (int64_t i = 0; i < n; i++) out[i] = static_cast<T>(ref);
    return;
  }
  const uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  uint64_t acc = words[0];
  int avail = 64;
  size_t w = 0;
  for (int64_t i = 0; i < n; i++) {
    uint64_t delta;
    if (avail >= bits) {
      delta = acc & mask;
      // Shifting a uint64 by 64 is UB; guard the exactly-consumed case.
      acc = bits < 64 ? acc >> bits : 0;
      avail -= bits;
    } else {
      uint64_t lo = acc;
      uint64_t hi = words[++w];
      delta = (lo | (hi << avail)) & mask;
      int taken = bits - avail;
      acc = taken < 64 ? hi >> taken : 0;
      avail = 64 - taken;
    }
    // Unsigned addition mirrors Pack's unsigned subtraction (two's-complement
    // wraparound is the identity here; the signed form would overflow).
    out[i] = static_cast<T>(
        static_cast<int64_t>(static_cast<uint64_t>(ref) + delta));
  }
}

template <typename T>
size_t EncodeTyped(const T* in, int64_t n, Buffer* out) {
  int64_t lo, hi;
  MinMax(in, n, &lo, &hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int bits = BitsFor(range);
  size_t nwords = (static_cast<size_t>(n) * bits + 63) / 64;
  Header h{lo, static_cast<uint16_t>(bits), 0, static_cast<uint32_t>(n)};
  size_t total = sizeof(Header) + nwords * 8;
  size_t start = out->size_bytes();
  out->Reserve(start + total);
  out->Append(&h, sizeof(h));
  if (nwords > 0) {
    // Pack into a scratch then append (keeps Pack simple).
    std::vector<uint64_t> words(nwords, 0);
    Pack(in, n, lo, bits, words.data());
    out->Append(words.data(), nwords * 8);
  }
  return total;
}

template <typename T>
int64_t DecodeTyped(const void* encoded, T* out) {
  Header h;
  std::memcpy(&h, encoded, sizeof(h));
  const uint64_t* words = reinterpret_cast<const uint64_t*>(
      static_cast<const char*>(encoded) + sizeof(Header));
  Unpack(words, h.count, h.reference, h.bits, out);
  return h.count;
}

}  // namespace

size_t ForCodec::Encode(const void* in, int64_t n, size_t width, Buffer* out) {
  // n == 0 is legal: a header-only block (reference 0, bits 0, count 0) that
  // round-trips to zero values. Lets stores of empty columns write one block
  // rather than special-case emptiness.
  X100_CHECK(n >= 0 && n <= static_cast<int64_t>(UINT32_MAX));
  switch (width) {
    case 1: return EncodeTyped(static_cast<const int8_t*>(in), n, out);
    case 2: return EncodeTyped(static_cast<const int16_t*>(in), n, out);
    case 4: return EncodeTyped(static_cast<const int32_t*>(in), n, out);
    case 8: return EncodeTyped(static_cast<const int64_t*>(in), n, out);
    default:
      X100_CHECK(false);
      return 0;
  }
}

int64_t ForCodec::Decode(const void* encoded, void* out, size_t width) {
  switch (width) {
    case 1: return DecodeTyped(encoded, static_cast<int8_t*>(out));
    case 2: return DecodeTyped(encoded, static_cast<int16_t*>(out));
    case 4: return DecodeTyped(encoded, static_cast<int32_t*>(out));
    case 8: return DecodeTyped(encoded, static_cast<int64_t*>(out));
    default:
      X100_CHECK(false);
      return 0;
  }
}

int64_t ForCodec::EncodedCount(const void* encoded) {
  Header h;
  std::memcpy(&h, encoded, sizeof(h));
  return h.count;
}

size_t ForCodec::EncodedBytes(const void* encoded) {
  Header h;
  std::memcpy(&h, encoded, sizeof(h));
  return sizeof(Header) +
         (static_cast<size_t>(h.count) * h.bits + 63) / 64 * 8;
}

}  // namespace x100
