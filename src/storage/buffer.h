#ifndef X100_STORAGE_BUFFER_H_
#define X100_STORAGE_BUFFER_H_

#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/status.h"

namespace x100 {

/// Growable 64-byte-aligned byte buffer backing vertical fragments; columns
/// hand out raw pointers into it for zero-copy vector views, so growth uses
/// doubling and pointers are only stable between appends (Tables freeze their
/// fragments before queries run, per the immutable-fragment design of §4.3).
class Buffer {
 public:
  Buffer() = default;

  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() { return data_.get(); }
  const void* data() const { return data_.get(); }
  size_t size_bytes() const { return size_; }

  void Reserve(size_t bytes) {
    if (bytes <= capacity_) return;
    size_t cap = capacity_ ? capacity_ : 4096;
    while (cap < bytes) cap *= 2;
    void* p = std::aligned_alloc(64, (cap + 63) & ~size_t{63});
    X100_CHECK(p != nullptr);
    if (size_) std::memcpy(p, data_.get(), size_);
    data_.reset(p);
    capacity_ = cap;
  }

  template <typename T>
  void PushBack(T v) {
    Reserve(size_ + sizeof(T));
    std::memcpy(static_cast<char*>(data_.get()) + size_, &v, sizeof(T));
    size_ += sizeof(T);
  }

  /// Appends `n` raw bytes.
  void Append(const void* src, size_t n) {
    Reserve(size_ + n);
    std::memcpy(static_cast<char*>(data_.get()) + size_, src, n);
    size_ += n;
  }

  template <typename T>
  T At(size_t i) const {
    return static_cast<const T*>(data())[i];
  }

  template <typename T>
  void Set(size_t i, T v) {
    static_cast<T*>(data())[i] = v;
  }

  void Clear() { size_ = 0; }

 private:
  struct Free {
    void operator()(void* p) const { std::free(p); }
  };
  std::unique_ptr<void, Free> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_BUFFER_H_
