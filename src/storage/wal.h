#ifndef X100_STORAGE_WAL_H_
#define X100_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/status.h"

namespace x100 {

/// Logical record types the durable store logs. The WAL itself treats record
/// bodies as opaque bytes; encode/decode of bodies lives in durable.cc.
enum class WalRecordType : uint8_t {
  kAppend = 1,      // body: one encoded row for `table`
  kDelete = 2,      // body: u64 rowid
  kMerge = 3,       // body: empty (replay re-runs the deterministic merge)
  kCheckpoint = 4,  // body: empty; lsn names the image file checkpoint-<lsn>.cat
};

/// One decoded WAL record handed to the replay callback.
struct WalRecord {
  WalRecordType type;
  uint64_t lsn = 0;
  std::string table;
  std::string body;
};

/// Checksummed append-only write-ahead log with group commit.
///
/// On-disk format, CRC-framed like X100COL2 blocks: segment files
/// `wal-<first_lsn>.log`, each a sequence of frames
///
///   u32 payload_len | u32 crc32(payload) | payload
///   payload = u8 type | u64 lsn | u16 table_len | table bytes | body bytes
///
/// (little-endian throughout). A torn frame is tolerated only as the
/// physical tail of the *last* segment: Open() truncates the segment to its
/// valid prefix; a bad frame in any earlier segment is corruption and fails
/// recovery.
///
/// Group commit: Append() assigns the lsn and buffers the encoded frame;
/// a background flusher batches every frame that arrives within the
/// `group_commit_us` window into one write+fsync. Commit(lsn) blocks until
/// the durable lsn covers `lsn`. With group_commit_us == 0 each Commit
/// triggers its own fsync (the no-batching baseline EXPERIMENTS.md E16
/// measures against).
class Wal {
 public:
  struct Options {
    std::string dir;
    int64_t group_commit_us = kDefaultWalGroupUs;
    size_t segment_bytes = size_t{16} << 20;  // rotate above this
  };

  /// Opens (creating the directory if needed), scans existing segments to
  /// find the next lsn, truncates a torn tail on the last segment, and
  /// starts the flusher. Returns nullptr with `*error` set on failure.
  static std::unique_ptr<Wal> Open(const Options& opts, std::string* error);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends a record to the commit buffer and returns its lsn. The record
  /// is NOT durable until Commit(lsn) returns.
  uint64_t Append(WalRecordType type, const std::string& table,
                  std::string body);

  /// Blocks until every record with lsn' <= lsn is on disk (fsync'd).
  Status Commit(uint64_t lsn);

  /// Appends a checkpoint record stamped `image_lsn` (the lsn covered by the
  /// just-written catalog image), makes it durable, then rotates to a fresh
  /// segment and unlinks all older segments. The caller must have quiesced
  /// writers: every record in the old segments must have lsn <= image_lsn.
  Status Checkpoint(uint64_t image_lsn);

  /// Replays records with lsn > after_lsn in log order, invoking `fn` for
  /// each. Reads the segment files directly; call before serving writes.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(const WalRecord&)>& fn) const;

  /// Highest lsn assigned so far (0 if none).
  uint64_t last_lsn() const;
  /// Highest lsn known durable.
  uint64_t durable_lsn() const;

 private:
  explicit Wal(const Options& opts);

  Status OpenSegment(uint64_t first_lsn);
  Status ScanExisting(std::string* error);
  void FlusherLoop();
  Status WriteAndSync(const std::string& bytes, uint64_t batch_last_lsn);

  Options opts_;
  std::vector<std::string> segments_;  // paths, log order; last is active

  mutable std::mutex mu_;              // buffer + lsn state
  std::condition_variable cv_pending_;  // flusher wakeup
  std::condition_variable cv_durable_;  // Commit() wakeup
  std::string pending_;                // encoded frames not yet written
  uint64_t pending_last_lsn_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  bool stop_ = false;
  std::string io_error_;  // sticky: first write/fsync failure

  std::mutex io_mu_;  // serializes write/fsync/rotate on fd_
  int fd_ = -1;
  size_t segment_written_ = 0;

  std::thread flusher_;
};

}  // namespace x100

#endif  // X100_STORAGE_WAL_H_
