#include "storage/shared_scan.h"

#include "common/metrics.h"

namespace x100 {

namespace {
// Global mirrors so shared-scan effectiveness shows up in every BENCH_*.json
// metrics snapshot; per-operator counts go to EXPLAIN ANALYZE traces.
struct SharedMetrics {
  Counter* attached;
  Counter* published;
  static SharedMetrics& Get() {
    static SharedMetrics m = {
        MetricsRegistry::Get().GetCounter("bm.shared.attached_blocks"),
        MetricsRegistry::Get().GetCounter("bm.shared.published_blocks")};
    return m;
  }
};
}  // namespace

SharedScanRegistry::Lease SharedScanRegistry::Acquire(const std::string& file,
                                                      int64_t b) {
  std::string key = file + "#" + std::to_string(b);
  std::lock_guard<std::mutex> lock(mu_);
  Lease lease;
  auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    if (std::shared_ptr<Block> live = it->second.lock()) {
      lease.block = std::move(live);
      lease.attached = true;
      SharedMetrics::Get().attached->Inc();
      return lease;
    }
    blocks_.erase(it);  // last referent dropped the payload; start fresh
  }
  lease.block = std::make_shared<Block>();
  lease.block->key = std::move(key);
  lease.owner = true;
  blocks_[lease.block->key] = lease.block;
  return lease;
}

void SharedScanRegistry::Publish(const Lease& lease) {
  {
    std::lock_guard<std::mutex> lk(lease.block->mu);
    lease.block->done = true;
  }
  lease.block->cv.notify_all();
  SharedMetrics::Get().published->Inc();
}

void SharedScanRegistry::Fail(const Lease& lease, std::string error) {
  {
    // Unregister first so a retry that races the wakeups below gets a fresh
    // owner lease instead of attaching to a corpse.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(lease.block->key);
    if (it != blocks_.end() && it->second.lock() == lease.block) {
      blocks_.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> lk(lease.block->mu);
    lease.block->done = true;
    lease.block->failed = true;
    lease.block->error = std::move(error);
  }
  lease.block->cv.notify_all();
}

bool SharedScanRegistry::Wait(const Lease& lease, std::string* error) {
  Block* b = lease.block.get();
  std::unique_lock<std::mutex> lk(b->mu);
  b->cv.wait(lk, [&] { return b->done; });
  if (b->failed) {
    if (error != nullptr) *error = b->error;
    return false;
  }
  return true;
}

}  // namespace x100
