#include "storage/snapshot.h"

#include <algorithm>
#include <utility>

namespace x100 {

MvccTable::MvccTable(Table* table, int64_t reserve_delta_rows)
    : table_(table),
      num_specs_(static_cast<int>(table->specs().size())),
      delta_capacity_(std::max<int64_t>(reserve_delta_rows, 1024)) {
  X100_CHECK(table_->frozen());
  // Every column past the declared specs must be a join index; Append
  // refuses to run until each has a registration.
  for (int c = num_specs_; c < table_->num_columns(); c++) {
    X100_CHECK(table_->schema().field(c).name.rfind("#ji_", 0) == 0);
  }
  table_->EnsureDeltaStorage();
  delta_capacity_ = std::max(delta_capacity_, table_->delta_rows() * 2);
  ReserveDeltas();
  std::lock_guard<std::mutex> lk(state_mu_);
  PublishLocked();
}

void MvccTable::RegisterJoinIndex(std::vector<std::string> fk_cols,
                                  const Table* target,
                                  std::vector<std::string> key_cols,
                                  std::string target_name) {
  std::lock_guard<std::mutex> lk(write_mu_);
  JiSpec spec;
  for (const std::string& c : fk_cols) spec.fk_idx.push_back(table_->ColumnIndex(c));
  for (const std::string& c : key_cols) {
    int i = target->schema().Find(c);
    X100_CHECK(i >= 0);
    spec.key_idx.push_back(i);
  }
  spec.target = target;
  spec.target_name = std::move(target_name);
  spec.self_col = table_->ColumnIndex(Table::JoinIndexName(spec.target_name));
  ji_.push_back(std::move(spec));
}

void MvccTable::ReserveDeltas() {
  for (int i = 0; i < table_->num_delta_columns(); i++) {
    table_->mutable_delta_column(i)->Reserve(delta_capacity_);
  }
}

void MvccTable::PublishLocked() {
  auto snap = std::make_shared<TableSnapshot>();
  snap->epoch = ++epoch_;
  snap->fragment_rows = table_->fragment_rows();
  snap->fragment_version = table_->fragment_version();
  snap->total_rows = table_->total_rows();
  if (current_ != nullptr && current_->fragment_rows == snap->fragment_rows &&
      table_->num_deleted() ==
          static_cast<int64_t>(current_->deleted->size())) {
    snap->deleted = current_->deleted;  // unchanged list: share the copy
  } else {
    snap->deleted =
        std::make_shared<const std::vector<int64_t>>(table_->deletion_list());
  }
  current_ = std::move(snap);
}

std::shared_ptr<const TableSnapshot> MvccTable::Pin() {
  std::unique_lock<std::mutex> lk(state_mu_);
  cv_fence_.wait(lk, [&] { return !fence_; });
  pins_++;
  std::shared_ptr<const TableSnapshot> snap = current_;
  // The returned pointer aliases the snapshot but its deleter releases the
  // pin; the inner shared_ptr keeps the snapshot alive until then.
  return std::shared_ptr<const TableSnapshot>(
      snap.get(), [this, keep = snap](const TableSnapshot*) mutable {
        keep.reset();
        std::lock_guard<std::mutex> lk2(state_mu_);
        if (--pins_ == 0) cv_pins_.notify_all();
      });
}

template <typename Fn>
void MvccTable::FenceAndRun(Fn fn) {
  std::unique_lock<std::mutex> lk(state_mu_);
  fence_ = true;
  cv_pins_.wait(lk, [&] { return pins_ == 0; });
  fn();
  PublishLocked();
  fence_ = false;
  lk.unlock();
  cv_fence_.notify_all();
}

Status MvccTable::JiLookup(JiSpec* spec, const std::vector<Value>& row,
                           int64_t* out) {
  const Table& target = *spec->target;
  if (spec->cached_version != target.fragment_version()) {
    spec->key_to_row.clear();
    spec->scanned_rows = 0;
    spec->cached_version = target.fragment_version();
  }
  auto composite_row = [&]() {
    uint64_t h = static_cast<uint64_t>(row[spec->fk_idx[0]].AsI64());
    for (size_t c = 1; c < spec->fk_idx.size(); c++) {
      h = (h << 32) ^ static_cast<uint64_t>(row[spec->fk_idx[c]].AsI64());
    }
    return static_cast<int64_t>(h);
  };
  int64_t key = composite_row();
  auto it = spec->key_to_row.find(key);
  if (it == spec->key_to_row.end() && spec->scanned_rows < target.total_rows()) {
    // Catch up on target rows appended since the last build.
    for (int64_t r = spec->scanned_rows; r < target.total_rows(); r++) {
      if (target.IsDeleted(r)) continue;
      uint64_t h = static_cast<uint64_t>(target.GetValue(r, spec->key_idx[0]).AsI64());
      for (size_t c = 1; c < spec->key_idx.size(); c++) {
        h = (h << 32) ^
            static_cast<uint64_t>(target.GetValue(r, spec->key_idx[c]).AsI64());
      }
      spec->key_to_row[static_cast<int64_t>(h)] = r;
    }
    spec->scanned_rows = target.total_rows();
    it = spec->key_to_row.find(key);
  }
  if (it == spec->key_to_row.end()) {
    return Status::Error("append: dangling foreign key into " +
                         spec->target_name);
  }
  *out = it->second;
  return Status::OK();
}

Status MvccTable::Append(const std::vector<Value>& row) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (static_cast<int>(row.size()) != num_specs_) {
    return Status::Error("append: expected " + std::to_string(num_specs_) +
                         " values, got " + std::to_string(row.size()));
  }
  if (table_->num_columns() - num_specs_ != static_cast<int>(ji_.size())) {
    return Status::Error(
        "append: table has join-index columns without a registered spec");
  }
  // Validate types up front: a bad value must produce an error, not an
  // engine abort inside AppendValue.
  bool novel_enum = false;
  for (int c = 0; c < num_specs_; c++) {
    const Table::ColumnSpec& s = table_->specs()[c];
    const Value& v = row[c];
    if (s.type == TypeId::kStr) {
      if (v.type() != TypeId::kStr) {
        return Status::Error("append: column " + s.name + " expects a string");
      }
    } else if (s.type == TypeId::kF64) {
      if (v.type() == TypeId::kStr) {
        return Status::Error("append: column " + s.name + " expects a number");
      }
    } else if (!IsIntegral(v.type())) {
      return Status::Error("append: column " + s.name + " expects an integer");
    }
    const Column& frag = table_->column(c);
    if (frag.is_enum() && frag.dict()->Lookup(v) < 0) {
      if (frag.dict()->size() >= 65536) {
        return Status::Error("append: enum dictionary for " + s.name +
                             " exceeds 65536 distinct values");
      }
      novel_enum = true;
    }
  }

  // Join-index values for the new row (reads target tables; the store-wide
  // write mutex keeps them stable).
  std::vector<Value> full = row;
  for (JiSpec& spec : ji_) {
    int64_t target_row = 0;
    Status s = JiLookup(&spec, row, &target_row);
    if (!s.ok()) return s;
    full.push_back(Value::I64(target_row));
  }

  bool need_capacity = table_->delta_rows() + 1 > delta_capacity_;
  if (!novel_enum && !need_capacity) {
    // Fast path: write beyond the published high-water mark, then publish.
    // Pinned readers never look past their snapshot's total_rows, and the
    // pre-reserved buffers keep their raw pointers stable.
    table_->Insert(full);
    std::lock_guard<std::mutex> st(state_mu_);
    PublishLocked();
    return Status::OK();
  }

  // Structural slow path: dictionary inserts (decode-base reallocation,
  // lookup-map mutation racing predicate rewrites) and capacity growth need
  // exclusive access.
  FenceAndRun([&] {
    if (need_capacity) {
      delta_capacity_ *= 2;
      ReserveDeltas();
    }
    for (int c = 0; c < num_specs_; c++) {
      const Column& frag = table_->column(c);
      if (frag.is_enum() && frag.storage_type() == TypeId::kU8 &&
          frag.dict()->size() >= 256 && frag.dict()->Lookup(row[c]) < 0) {
        table_->WidenEnumCodes(c);
      }
    }
    table_->Insert(full);
  });
  return Status::OK();
}

Status MvccTable::Delete(int64_t rowid) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (rowid < 0 || rowid >= table_->total_rows()) {
    return Status::Error("delete: rowid out of range");
  }
  std::vector<int64_t> next = table_->deletion_list();
  auto it = std::lower_bound(next.begin(), next.end(), rowid);
  if (it != next.end() && *it == rowid) {
    return Status::Error("delete: row already deleted");
  }
  next.insert(it, rowid);
  // Mirror into the Table (checkpoints serialize it from there); publish a
  // fresh copy-on-write list for new pins. Old pins keep the old vector.
  table_->RestoreDeletionList(next);
  std::lock_guard<std::mutex> st(state_mu_);
  PublishLocked();
  return Status::OK();
}

Status MvccTable::Merge() {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (table_->delta_rows() == 0 && table_->num_deleted() == 0) {
    return Status::OK();
  }
  // Stage the fold off-fence: queries keep running against the old
  // fragments while we build the new ones.
  Table::Merged merged = table_->BuildMerged();
  std::vector<std::pair<std::string, std::unique_ptr<Column>>> extra;
  for (int c = num_specs_; c < table_->num_columns(); c++) {
    auto col = std::make_unique<Column>(TypeId::kI64, false);
    int64_t total = table_->total_rows();
    for (int64_t r = 0; r < total; r++) {
      if (table_->IsDeleted(r)) continue;
      // This table's own #ji_ values survive unchanged: targets keep their
      // rowids (only merges of the TARGET invalidate them, and DurableStore
      // never merges a table that has dependents in the background).
      col->AppendI64(table_->GetValue(r, c).AsI64());
    }
    extra.emplace_back(table_->schema().field(c).name, std::move(col));
  }
  FenceAndRun([&] {
    table_->InstallMerged(std::move(merged), std::move(extra));
    table_->EnsureDeltaStorage();
    ReserveDeltas();
  });
  return Status::OK();
}

int64_t MvccTable::delta_rows() const {
  // Reads the published snapshot, not the live column: callers (the
  // background merge thread) poll this concurrently with writers.
  std::lock_guard<std::mutex> lk(state_mu_);
  return current_->total_rows - current_->fragment_rows;
}

uint64_t MvccTable::epoch() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return epoch_;
}

}  // namespace x100
