#include "storage/disk_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace x100 {

namespace {

// Serialized little-endian structs; fixed sizes are part of the format.
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  uint32_t value_width;
  uint32_t crc;  // CRC-32 of the preceding 20 bytes
};
static_assert(sizeof(FileHeader) == 24);

struct BlockEntry {
  uint64_t offset;
  uint64_t bytes;
  int64_t value_count;
  uint32_t crc;
  uint32_t codec;  // CodecId; was a zeroed reserved field in v1
};
static_assert(sizeof(BlockEntry) == 32);

struct FooterTail {
  uint64_t num_blocks;
  uint64_t footer_bytes;  // byte size of the BlockEntry array
  uint32_t crc;           // CRC-32 of the BlockEntry array
  char magic[4];          // "XFTR"
};
static_assert(sizeof(FooterTail) == 24);

constexpr char kFooterMagic[4] = {'X', 'F', 'T', 'R'};

Status IoError(const std::string& what, const std::string& path) {
  return Status::Error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return ~c;
}

DiskStore::DiskStore(std::string root) : root_(std::move(root)) {
  // Best-effort create; a pre-existing directory is fine, real failures
  // surface as I/O errors on first file operation.
  ::mkdir(root_.c_str(), 0755);
}

DiskStore::~DiskStore() {
  for (auto& [name, fd] : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::string DiskStore::PathFor(const std::string& name) const {
  return root_ + "/" + name;
}

bool DiskStore::Exists(const std::string& name) const {
  struct stat st;
  return ::stat(PathFor(name).c_str(), &st) == 0;
}

// ---- Writer -----------------------------------------------------------------

DiskStore::Writer::Writer(std::FILE* f, std::string path, bool compressed,
                          size_t value_width)
    : f_(f), path_(std::move(path)), offset_(sizeof(FileHeader)) {
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.flags = compressed ? kFlagCompressed : 0;
  h.value_width = static_cast<uint32_t>(value_width);
  h.crc = Crc32(&h, sizeof(FileHeader) - sizeof(uint32_t));
  std::fwrite(&h, sizeof(h), 1, f_);
}

DiskStore::Writer::~Writer() {
  if (f_ != nullptr) std::fclose(f_);
}

Status DiskStore::Writer::AppendBlock(const void* data, size_t bytes,
                                      int64_t value_count, CodecId codec) {
  X100_CHECK(!finished_);
  if (bytes > 0 && std::fwrite(data, 1, bytes, f_) != bytes) {
    return IoError("write", path_);
  }
  BlockMeta m;
  m.offset = offset_;
  m.bytes = bytes;
  m.value_count = value_count;
  m.crc = Crc32(data, bytes);
  m.codec = codec;
  blocks_.push_back(m);
  offset_ += bytes;
  return Status::OK();
}

Status DiskStore::Writer::Finish() {
  X100_CHECK(!finished_);
  finished_ = true;
  std::vector<BlockEntry> entries(blocks_.size());
  for (size_t i = 0; i < blocks_.size(); i++) {
    entries[i] = {blocks_[i].offset, blocks_[i].bytes, blocks_[i].value_count,
                  blocks_[i].crc,
                  static_cast<uint32_t>(blocks_[i].codec)};
  }
  size_t footer_bytes = entries.size() * sizeof(BlockEntry);
  if (!entries.empty() &&
      std::fwrite(entries.data(), 1, footer_bytes, f_) != footer_bytes) {
    return IoError("write footer", path_);
  }
  FooterTail tail{};
  tail.num_blocks = entries.size();
  tail.footer_bytes = footer_bytes;
  tail.crc = Crc32(entries.data(), footer_bytes);
  std::memcpy(tail.magic, kFooterMagic, sizeof(kFooterMagic));
  if (std::fwrite(&tail, sizeof(tail), 1, f_) != 1) {
    return IoError("write footer tail", path_);
  }
  int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0) return IoError("close", path_);
  return Status::OK();
}

std::unique_ptr<DiskStore::Writer> DiskStore::NewFile(const std::string& name,
                                                      bool compressed,
                                                      size_t value_width,
                                                      Status* status) {
  Forget(name);  // a cached fd would read the old file's blocks
  std::string path = PathFor(name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *status = IoError("create", path);
    return nullptr;
  }
  *status = Status::OK();
  return std::unique_ptr<Writer>(
      new Writer(f, std::move(path), compressed, value_width));
}

// ---- Reading ----------------------------------------------------------------

int DiskStore::FdFor(const std::string& name, Status* status) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(name);
  if (it != fds_.end()) {
    *status = Status::OK();
    return it->second;
  }
  int fd = ::open(PathFor(name).c_str(), O_RDONLY);
  if (fd < 0) {
    *status = IoError("open", PathFor(name));
    return -1;
  }
  fds_[name] = fd;
  *status = Status::OK();
  return fd;
}

void DiskStore::Forget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(name);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
}

namespace {
Status PreadAll(int fd, void* buf, size_t n, uint64_t offset,
                const std::string& path) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t got = ::pread(fd, p, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return IoError("pread", path);
    }
    if (got == 0) return Status::Error("short read in " + path);
    p += got;
    offset += static_cast<uint64_t>(got);
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}
}  // namespace

Status DiskStore::OpenMeta(const std::string& name, FileMeta* meta) {
  Status s;
  int fd = FdFor(name, &s);
  if (!s.ok()) return s;
  std::string path = PathFor(name);

  struct stat st;
  if (::fstat(fd, &st) != 0) return IoError("stat", path);
  uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < sizeof(FileHeader) + sizeof(FooterTail)) {
    return Status::Error("file too small for chunk format: " + path);
  }

  FileHeader h;
  s = PreadAll(fd, &h, sizeof(h), 0, path);
  if (!s.ok()) return s;
  bool v1 = std::memcmp(h.magic, kMagicV1, sizeof(kMagicV1)) == 0;
  if (!v1 && std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("bad magic in " + path);
  }
  if (h.version != (v1 ? kVersionV1 : kVersion)) {
    return Status::Error("unsupported chunk-file version in " + path);
  }
  if (h.crc != Crc32(&h, sizeof(FileHeader) - sizeof(uint32_t))) {
    return Status::Error("header checksum mismatch in " + path);
  }

  FooterTail tail;
  s = PreadAll(fd, &tail, sizeof(tail), file_bytes - sizeof(tail), path);
  if (!s.ok()) return s;
  if (std::memcmp(tail.magic, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Status::Error("bad footer magic in " + path);
  }
  if (tail.num_blocks * sizeof(BlockEntry) != tail.footer_bytes ||
      tail.footer_bytes + sizeof(FooterTail) + sizeof(FileHeader) >
          file_bytes) {
    return Status::Error("corrupt footer geometry in " + path);
  }
  std::vector<BlockEntry> entries(tail.num_blocks);
  if (tail.num_blocks > 0) {
    s = PreadAll(fd, entries.data(), tail.footer_bytes,
                 file_bytes - sizeof(tail) - tail.footer_bytes, path);
    if (!s.ok()) return s;
  }
  if (tail.crc != Crc32(entries.data(), tail.footer_bytes)) {
    return Status::Error("footer checksum mismatch in " + path);
  }

  meta->compressed = (h.flags & kFlagCompressed) != 0;
  meta->value_width = h.value_width;
  meta->blocks.clear();
  meta->blocks.reserve(entries.size());
  meta->payload_bytes = 0;
  // v1 footers carry no codec id: compressed files were FOR throughout,
  // plain files raw.
  CodecId v1_codec = meta->compressed ? CodecId::kFor : CodecId::kRaw;
  for (size_t i = 0; i < entries.size(); i++) {
    const BlockEntry& e = entries[i];
    CodecId codec = v1 ? v1_codec : static_cast<CodecId>(e.codec);
    if (!v1 && (e.codec > 0xFF || Codec::ForId(codec) == nullptr)) {
      return Status::Error("unknown codec id " + std::to_string(e.codec) +
                           " for block " + std::to_string(i) + " in " + path);
    }
    meta->blocks.push_back({e.offset, e.bytes, e.value_count, e.crc, codec});
    meta->payload_bytes += e.bytes;
  }
  return Status::OK();
}

Status DiskStore::ReadBlock(const std::string& name, const FileMeta& meta,
                            size_t b, void* buf) {
  X100_CHECK(b < meta.blocks.size());
  Status s;
  int fd = FdFor(name, &s);
  if (!s.ok()) return s;
  const BlockMeta& m = meta.blocks[b];
  s = PreadAll(fd, buf, m.bytes, m.offset, PathFor(name));
  if (!s.ok()) return s;
  if (Crc32(buf, m.bytes) != m.crc) {
    return Status::Error("block " + std::to_string(b) +
                         " checksum mismatch in " + PathFor(name));
  }
  return Status::OK();
}

// ---- Manifest ---------------------------------------------------------------
//
// Text format, one column file per line after the header:
//   x100-manifest v1 <num_entries>
//   <file> <payload_bytes> <num_blocks> <crc-hex> <raw|cmp>
// ("cmp" marks codec-encoded files; older manifests say "for" — any kind
// other than "raw" reads back as compressed.) The final line checksums
// everything above it so truncated or edited manifests are detected:
//   #crc <crc-hex>

Status DiskStore::WriteManifest(const std::string& table,
                                const std::vector<ManifestEntry>& entries) {
  std::string body = "x100-manifest v1 " + std::to_string(entries.size()) + "\n";
  char line[512];
  for (const ManifestEntry& e : entries) {
    std::snprintf(line, sizeof(line), "%s %llu %llu %08x %s\n",
                  e.file.c_str(),
                  static_cast<unsigned long long>(e.payload_bytes),
                  static_cast<unsigned long long>(e.num_blocks), e.crc,
                  e.compressed ? "cmp" : "raw");
    body += line;
  }
  std::snprintf(line, sizeof(line), "#crc %08x\n",
                Crc32(body.data(), body.size()));
  body += line;

  // Temp-file + rename: the manifest is rewritten while readers of the old
  // fragment may still be draining (MVCC merge swap), and a crash mid-write
  // must leave either the old or the new manifest, never a torn one.
  std::string path = PathFor(table + ".manifest");
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IoError("create", tmp);
  size_t n = std::fwrite(body.data(), 1, body.size(), f);
  int flush_rc = n == body.size() ? std::fflush(f) : 0;
  int sync_rc = flush_rc == 0 ? ::fsync(fileno(f)) : 0;
  int rc = std::fclose(f);
  if (n != body.size() || flush_rc != 0 || sync_rc != 0 || rc != 0) {
    std::remove(tmp.c_str());
    return IoError("write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("rename", path);
  }
  return Status::OK();
}

Status DiskStore::ReadManifest(const std::string& table,
                               std::vector<ManifestEntry>* out) {
  std::string path = PathFor(table + ".manifest");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("open", path);
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, got);
  std::fclose(f);

  size_t crc_line = body.rfind("#crc ");
  if (crc_line == std::string::npos) {
    return Status::Error("manifest missing checksum line: " + path);
  }
  uint32_t want = 0;
  if (std::sscanf(body.c_str() + crc_line, "#crc %x", &want) != 1 ||
      Crc32(body.data(), crc_line) != want) {
    return Status::Error("manifest checksum mismatch: " + path);
  }

  size_t count = 0;
  int consumed = 0;
  if (std::sscanf(body.c_str(), "x100-manifest v1 %zu\n%n", &count,
                  &consumed) != 1) {
    return Status::Error("bad manifest header: " + path);
  }
  out->clear();
  const char* p = body.c_str() + consumed;
  for (size_t i = 0; i < count; i++) {
    char file[256], kind[8];
    unsigned long long bytes = 0, blocks = 0;
    uint32_t crc = 0;
    int used = 0;
    if (std::sscanf(p, "%255s %llu %llu %x %7s\n%n", file, &bytes, &blocks,
                    &crc, kind, &used) != 5) {
      return Status::Error("bad manifest entry in " + path);
    }
    ManifestEntry e;
    e.file = file;
    e.payload_bytes = bytes;
    e.num_blocks = blocks;
    e.crc = crc;
    e.compressed = std::strcmp(kind, "raw") != 0;
    out->push_back(std::move(e));
    p += used;
  }
  return Status::OK();
}

}  // namespace x100
