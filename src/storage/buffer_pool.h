#ifndef X100_STORAGE_BUFFER_POOL_H_
#define X100_STORAGE_BUFFER_POOL_H_

// Bounded buffer pool for disk-backed ColumnBM (§4.3: "a buffer manager
// geared towards sequential access of large chunks"). Frames cache one block
// payload each, are pinned while a scan (or prefetch task) holds a
// reference, and are evicted clock-wise (second chance) when the byte budget
// is exceeded. The budget comes from env X100_BM_BYTES unless a size is
// passed explicitly, making pool pressure a measurable, swappable knob
// rather than a baked-in assumption.
//
// Thread-safety: all bookkeeping is under one mutex; block loads run
// *outside* the lock (concurrent loads of different blocks overlap, the
// pool stays responsive). Two threads requesting the same missing block
// rendezvous on the frame: the first loads, the second waits on the pool's
// condition variable. Pins are std::shared_ptr-based, so pin/unpin from any
// thread is safe and a frame's memory outlives eviction until its last pin
// drops.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace x100 {

class BufferPool {
 public:
  struct Frame {
    std::unique_ptr<char[]> data;
    size_t bytes = 0;
    bool loaded = false;      // payload valid
    bool failed = false;      // load error (frame is not cached)
    bool ref_bit = false;     // clock second-chance bit
    std::string key;          // back-pointer for clock-hand bookkeeping
    Status error;
  };

  /// Pinned view of one cached block. The payload stays valid (and the
  /// frame unevictable-but-droppable: an evicted frame's memory lives until
  /// the last pin goes away) for the Pin's lifetime. Copyable and movable.
  class Pin {
   public:
    Pin() = default;
    const void* data() const { return frame_->data.get(); }
    size_t bytes() const { return frame_->bytes; }
    explicit operator bool() const { return frame_ != nullptr; }

   private:
    friend class BufferPool;
    explicit Pin(std::shared_ptr<Frame> f) : frame_(std::move(f)) {}
    std::shared_ptr<Frame> frame_;
  };

  /// Fills `dst` (frame payload of the agreed size) from storage.
  using Loader = std::function<Status(void* dst)>;

  /// Budget <= 0 reads env X100_BM_BYTES (default kDefaultPoolBytes).
  explicit BufferPool(int64_t budget_bytes = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pin on block `key`, calling `loader` (outside the pool lock)
  /// to fill a fresh frame of `bytes` bytes on a miss. On a hit `*was_hit`
  /// (if non-null) is set true and `loader` is not called. Throws via the
  /// returned Status only: a failed load returns the loader's error and
  /// caches nothing.
  Status GetOrLoad(const std::string& key, size_t bytes, const Loader& loader,
                   Pin* pin, bool* was_hit = nullptr);

  /// Drops every unpinned frame whose key starts with `prefix` (a rewritten
  /// file's stale blocks). Pinned frames are left alone.
  void InvalidatePrefix(const std::string& prefix);

  size_t budget_bytes() const { return budget_; }
  size_t resident_bytes() const {
    return resident_.load(std::memory_order_relaxed);
  }

  struct Stats {
    uint64_t hits = 0, misses = 0, evictions = 0, read_bytes = 0;
    uint64_t load_retries = 0;  // waiters that re-looked-up after a failed load
  };
  Stats stats() const;

  /// env X100_BM_BYTES (bytes; k/m/g suffixes accepted), else default.
  /// Malformed values are a fatal configuration error (common/config.h).
  static int64_t EnvPoolBytes();

  static constexpr int64_t kDefaultPoolBytes = 256ll << 20;

 private:
  /// Evicts unpinned frames clock-wise until `need` more bytes fit in the
  /// budget or nothing evictable remains. Caller holds mu_.
  void EvictFor(size_t need);

  size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // load-rendezvous wakeups
  std::map<std::string, std::shared_ptr<Frame>> frames_;
  std::list<std::shared_ptr<Frame>> clock_;  // insertion ring, hand at begin()
  std::atomic<size_t> resident_{0};

  std::atomic<uint64_t> hits_{0}, misses_{0}, evictions_{0}, read_bytes_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace x100

#endif  // X100_STORAGE_BUFFER_POOL_H_
