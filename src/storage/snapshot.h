#ifndef X100_STORAGE_SNAPSHOT_H_
#define X100_STORAGE_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace x100 {

/// An epoch-consistent view of one table, pinned for the duration of a
/// query. Scans must take ALL bounds from here — fragment_rows, the delta
/// high-water mark (total_rows), and the deletion list — and never from the
/// live Table, which concurrent writers keep moving.
///
/// Validity contract: rows below `total_rows` were fully written (and their
/// publication ordered) before this snapshot was handed out; the deletion
/// list is an immutable copy-on-write vector. Delta column storage never
/// reallocates while any snapshot is pinned (writers re-reserve capacity and
/// swap fragments only behind the fence, which drains pins first), so raw
/// pointers taken from the table's columns stay valid for the pin's
/// lifetime.
struct TableSnapshot {
  uint64_t epoch = 0;
  int64_t fragment_rows = 0;
  int64_t fragment_version = 0;
  int64_t total_rows = 0;  // fragment_rows + published delta rows
  std::shared_ptr<const std::vector<int64_t>> deleted;  // sorted rowids
};

/// The set of table snapshots one query executes against, keyed by table
/// name. Owning the shared_ptrs holds the pins; destroying the set releases
/// them (unblocking any writer waiting to fence).
struct SnapshotSet {
  std::map<std::string, std::shared_ptr<const TableSnapshot>> tables;

  const TableSnapshot* Find(const std::string& name) const {
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : it->second.get();
  }
};

/// MVCC write path over a frozen Table, in place (plans resolve `const
/// Table&` at build time, so the Table object itself must never move).
///
/// Concurrency model:
///  - Any number of readers Pin() snapshots concurrently with writers.
///  - Writers (Append/Delete/Merge) are serialized by an internal mutex;
///    when tables reference each other through join indices, ALL writers of
///    the group must additionally be serialized externally (DurableStore
///    holds one store-wide write mutex) because Append reads target tables
///    to maintain `#ji_*` columns.
///  - Fast-path appends touch only pre-reserved delta storage beyond the
///    published high-water mark, then publish a new snapshot; no reader can
///    observe a torn row. Structural changes (delta capacity growth, novel
///    enum dictionary values, code widening, merge installation) fence:
///    block new pins, drain existing ones, mutate, publish, unfence.
///  - Merge stages the O(rows) fold off-fence (BuildMerged + join-index
///    copy), then swaps it in under the fence.
class MvccTable {
 public:
  /// `table` must be frozen and outlive this object. `reserve_delta_rows`
  /// is the delta capacity pre-reserved between fences (appends beyond it
  /// re-reserve behind a fence).
  MvccTable(Table* table, int64_t reserve_delta_rows);

  MvccTable(const MvccTable&) = delete;
  MvccTable& operator=(const MvccTable&) = delete;

  /// Declares how Append computes the `#ji_<target_name>` column: hash-join
  /// `fk_cols` of this table against `key_cols` of `target` (must match the
  /// Table::BuildJoinIndex that built the column). Every `#ji_*` column in
  /// the schema needs a registration before Append will succeed.
  void RegisterJoinIndex(std::vector<std::string> fk_cols, const Table* target,
                         std::vector<std::string> key_cols,
                         std::string target_name);

  /// Pins the current snapshot. Blocks while a writer holds the fence.
  std::shared_ptr<const TableSnapshot> Pin();

  /// Appends one row (values for the declared columns only; join-index
  /// columns are computed here). Returns an error for arity/type problems,
  /// dangling foreign keys, or an enum dictionary past 65536 entries.
  Status Append(const std::vector<Value>& row);

  /// Marks `rowid` deleted (copy-on-write list; O(d) per call).
  Status Delete(int64_t rowid);

  /// Folds deltas + deletions into fresh fragments (order-preserving, so
  /// aggregates are bit-identical), reassigning #rowIds. Join-index columns
  /// of THIS table are carried over; tables whose join indices point AT
  /// this table are stale afterwards — DurableStore only merges tables
  /// without dependents in the background.
  Status Merge();

  Table* table() { return table_; }
  const Table& table() const { return *table_; }
  /// Published delta row count (safe to poll concurrently with writers).
  int64_t delta_rows() const;
  uint64_t epoch() const;

 private:
  struct JiSpec {
    std::vector<int> fk_idx;   // spec-column indices in this table
    const Table* target;
    std::vector<int> key_idx;  // column indices in target
    std::string target_name;
    int self_col = -1;  // schema index of the #ji_ column
    // Incremental key -> target-rowid cache, rebuilt when the target's
    // fragments are swapped (merge reassigns its rowids).
    std::unordered_map<int64_t, int64_t> key_to_row;
    int64_t scanned_rows = 0;
    int64_t cached_version = -1;
  };

  void PublishLocked();  // state_mu_ held
  template <typename Fn>
  void FenceAndRun(Fn fn);
  void ReserveDeltas();
  Status JiLookup(JiSpec* spec, const std::vector<Value>& row, int64_t* out);

  Table* table_;
  int num_specs_;  // declared (non-ji) columns

  std::mutex write_mu_;  // serializes Append/Delete/Merge
  int64_t delta_capacity_;
  std::vector<JiSpec> ji_;

  mutable std::mutex state_mu_;  // snapshot/pin/fence state
  std::condition_variable cv_fence_;  // pinners wait for !fence_
  std::condition_variable cv_pins_;   // fencer waits for pins_ == 0
  std::shared_ptr<const TableSnapshot> current_;
  uint64_t epoch_ = 0;
  int pins_ = 0;
  bool fence_ = false;
};

}  // namespace x100

#endif  // X100_STORAGE_SNAPSHOT_H_
