#ifndef X100_STORAGE_COLUMNBM_H_
#define X100_STORAGE_COLUMNBM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "storage/column.h"

namespace x100 {

/// ColumnBM buffer-manager simulation (§4, "Disk"; §4.3).
///
/// Where MonetDB stores each BAT in one continuous file, ColumnBM partitions
/// column data into large (>1MB) chunks and serves them through a buffer pool
/// geared to sequential access. The paper's ColumnBM was still under
/// development (all its experiments run on in-memory BATs); we model the
/// interface and accounting so scans can be driven block-at-a-time and I/O
/// volume measured: reads are counted per block, and an optional simulated
/// bandwidth ceiling converts bytes to stall nanoseconds for experiments that
/// want the disk-bound regime.
class ColumnBm {
 public:
  explicit ColumnBm(size_t block_size = kColumnBmBlockSize)
      : block_size_(block_size) {}

  ColumnBm(const ColumnBm&) = delete;
  ColumnBm& operator=(const ColumnBm&) = delete;

  /// Copies a column's physical data into chunked storage under `file`.
  void Store(const std::string& file, const Column& col);

  /// Stores an integral column FOR-compressed (§4.3 lightweight compression):
  /// fixed-count blocks of bit-packed deltas. Decompression happens at read
  /// time on the RAM->cache boundary. Returns the compressed byte size.
  size_t StoreCompressed(const std::string& file, const Column& col,
                         int64_t values_per_block = 1 << 16);

  /// Reads block `b` of a compressed file, decompressing into `out`
  /// (caller provides >= values_per_block * width bytes). Returns the value
  /// count. Accounts only the *compressed* bytes as I/O.
  int64_t ReadDecompressed(const std::string& file, int64_t b, void* out);

  /// Total stored bytes of `file` (compressed size for compressed files).
  int64_t FileBytes(const std::string& file) const;

  /// Number of blocks in `file`.
  int64_t NumBlocks(const std::string& file) const;

  bool Contains(const std::string& file) const {
    return files_.find(file) != files_.end();
  }

  /// Decoded value count of compressed block `b` (header peek; no I/O
  /// accounting — callers size their decode buffer with this).
  int64_t CompressedBlockCount(const std::string& file, int64_t b) const;

  /// Returns block `b` (pointer + byte count), accounting the read. The
  /// pointer stays valid for the ColumnBm's lifetime (pinning is a no-op in
  /// this in-memory simulation).
  struct BlockRef {
    const void* data;
    size_t bytes;
  };
  BlockRef ReadBlock(const std::string& file, int64_t b);

  // -- accounting --

  /// All per-instance I/O accounting in one resettable struct: block reads,
  /// bytes crossing the simulated disk boundary, and nanoseconds spent
  /// stalled in the simulated-bandwidth throttle.
  struct Stats {
    int64_t blocks_read = 0;
    int64_t bytes_read = 0;
    int64_t stall_nanos = 0;
  };
  const Stats& stats() const { return stats_; }
  int64_t blocks_read() const { return stats_.blocks_read; }
  int64_t bytes_read() const { return stats_.bytes_read; }
  int64_t stall_nanos() const { return stats_.stall_nanos; }
  void ResetStats() { stats_ = Stats(); }

  /// If >0, ReadBlock busy-waits to cap throughput at this many bytes/sec,
  /// simulating an I/O-bound substrate.
  void set_simulated_bandwidth(double bytes_per_sec) {
    simulated_bandwidth_ = bytes_per_sec;
  }

  size_t block_size() const { return block_size_; }

 private:
  struct File {
    std::vector<std::unique_ptr<char[]>> blocks;
    std::vector<size_t> block_bytes;
    bool compressed = false;
    size_t value_width = 0;  // compressed files: bytes per decoded value
  };

  void AccountRead(size_t bytes);
  void Throttle(size_t bytes);

  size_t block_size_;
  std::map<std::string, File> files_;
  Stats stats_;
  double simulated_bandwidth_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_COLUMNBM_H_
