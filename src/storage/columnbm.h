#ifndef X100_STORAGE_COLUMNBM_H_
#define X100_STORAGE_COLUMNBM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "storage/buffer_pool.h"
#include "storage/column.h"
#include "storage/disk_store.h"

namespace x100 {

class SharedScanRegistry;

/// ColumnBM buffer manager (§4, "Disk"; §4.3).
///
/// Where MonetDB stores each BAT in one continuous file, ColumnBM partitions
/// column data into large (>1MB) chunks and serves them through a buffer pool
/// geared to sequential access. Two backends share this interface:
///
///  - memory (the original simulation): blocks live in a std::map, reads are
///    free, and an optional simulated bandwidth ceiling converts bytes to
///    stall nanoseconds for experiments that want the disk-bound regime;
///  - disk: blocks live in checksummed chunk files (storage/disk_store.h)
///    and are served through a bounded BufferPool (storage/buffer_pool.h,
///    budget env X100_BM_BYTES), so scans touch real file I/O and eviction.
///
/// The backend is picked per instance: Options{.disk_dir = ...} selects
/// disk explicitly, and env X100_BM_DIR flips default-constructed instances
/// (every existing call site) to a disk store rooted there.
///
/// Thread-safety: Store/StoreCompressed must not race with reads of the same
/// file (scans store at Open, which exchange runs serially); everything else
/// — ReadBlock/ReadDecompressed/metadata from any number of threads — is
/// safe, which is what morsel-parallel scans and async prefetch require.
class ColumnBm {
 public:
  struct Options {
    size_t block_size = kColumnBmBlockSize;
    /// Non-empty: disk backend rooted at this directory.
    std::string disk_dir;
    /// Buffer-pool budget in bytes; <= 0 reads env X100_BM_BYTES.
    int64_t pool_bytes = 0;
  };

  /// Memory backend — unless env X100_BM_DIR names a directory, which
  /// switches every default-constructed ColumnBm to disk storage there.
  explicit ColumnBm(size_t block_size = kColumnBmBlockSize);
  explicit ColumnBm(const Options& opts);
  ~ColumnBm();

  ColumnBm(const ColumnBm&) = delete;
  ColumnBm& operator=(const ColumnBm&) = delete;

  bool disk_backed() const { return store_ != nullptr; }
  /// Null for the memory backend.
  BufferPool* pool() { return pool_.get(); }

  /// Copies a column's physical data into chunked storage under `file`.
  void Store(const std::string& file, const Column& col);

  /// Store-once rendezvous for concurrent scans of the same frozen column:
  /// runs `store` (which must Store/StoreCompressed exactly `file`) iff the
  /// file is absent, serializing racing callers so one stores and the rest
  /// see it stored. Without this, two sessions opening the same table race
  /// the Contains/Store pair and concurrently rewrite the file under each
  /// other's reads.
  void EnsureStored(const std::string& file,
                    const std::function<void()>& store);

  /// Registry letting concurrent scans of this instance attach to each
  /// other's in-flight block loads (storage/shared_scan.h).
  SharedScanRegistry& shared_scans() { return *shared_; }

  /// Stores an integral column compressed (§4.3 lightweight compression) in
  /// fixed-count blocks. Each block gets the cheapest codec by sampled
  /// trial-encode (FOR / PDICT / RLE / PFOR-delta, falling back to raw when
  /// nothing beats verbatim bytes); pass `force` to pin one codec for every
  /// block (benchmarks and bit-identity tests). Decompression happens at
  /// read time on the RAM->cache boundary. Returns the stored byte size.
  size_t StoreCompressed(const std::string& file, const Column& col,
                         int64_t values_per_block = 1 << 16,
                         std::optional<CodecId> force = std::nullopt);

  /// Reads block `b` of a compressed file, decompressing into `out`
  /// (caller provides >= values_per_block * width bytes). Returns the value
  /// count. Accounts only the *compressed* bytes as I/O.
  int64_t ReadDecompressed(const std::string& file, int64_t b, void* out);

  /// Total stored bytes of `file` (compressed size for compressed files).
  int64_t FileBytes(const std::string& file) const;

  /// Number of blocks in `file`.
  int64_t NumBlocks(const std::string& file) const;

  bool Contains(const std::string& file) const;

  /// Decoded value count of compressed block `b` (header/footer peek; no
  /// I/O accounting — callers size their decode buffer with this).
  int64_t CompressedBlockCount(const std::string& file, int64_t b) const;

  /// Stored byte size of block `b` (no I/O accounting).
  size_t BlockBytes(const std::string& file, int64_t b) const;

  /// Codec block `b` of a compressed file was stored with (kRaw for files
  /// written by Store). No I/O accounting.
  CodecId BlockCodec(const std::string& file, int64_t b) const;

  /// Returns block `b` (pointer + byte count), accounting the read. The
  /// payload stays valid for the BlockRef's lifetime: the ref carries the
  /// buffer-pool pin on the disk backend (a no-op pin in memory mode), so
  /// callers that stage a block across calls must keep the ref alive.
  /// Throws std::runtime_error on I/O or checksum failure.
  struct BlockRef {
    const void* data = nullptr;
    size_t bytes = 0;
    /// False when the read crossed the disk boundary (pool miss); the
    /// memory backend always reports true.
    bool cache_hit = true;
    BufferPool::Pin pin;
  };
  BlockRef ReadBlock(const std::string& file, int64_t b);

  /// Writes the per-table manifest listing `files` (all must be stored) via
  /// the DiskStore; no-op Status::OK() for the memory backend.
  Status WriteTableManifest(const std::string& table,
                            const std::vector<std::string>& files);

  // -- accounting --

  /// Per-instance I/O accounting: logical block reads and bytes served
  /// through the interface (every ReadBlock/ReadDecompressed, cached or
  /// not), plus nanoseconds stalled in the simulated-bandwidth throttle.
  /// Physical disk traffic is the buffer pool's read_bytes counter.
  struct Stats {
    int64_t blocks_read = 0;
    int64_t bytes_read = 0;
    int64_t stall_nanos = 0;
  };
  Stats stats() const {
    return {blocks_read_.load(std::memory_order_relaxed),
            bytes_read_.load(std::memory_order_relaxed),
            stall_nanos_.load(std::memory_order_relaxed)};
  }
  int64_t blocks_read() const {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t stall_nanos() const {
    return stall_nanos_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    blocks_read_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    stall_nanos_.store(0, std::memory_order_relaxed);
  }

  /// If >0, memory-backend reads busy-wait to cap throughput at this many
  /// bytes/sec, simulating an I/O-bound substrate. Ignored by the disk
  /// backend (its I/O is real).
  void set_simulated_bandwidth(double bytes_per_sec) {
    simulated_bandwidth_ = bytes_per_sec;
  }

  size_t block_size() const { return block_size_; }

 private:
  struct File {
    std::vector<std::unique_ptr<char[]>> blocks;
    std::vector<size_t> block_bytes;
    bool compressed = false;
    size_t value_width = 0;  // compressed files: bytes per decoded value
    // Compressed files only (raw payloads carry no self-describing header):
    std::vector<CodecId> codecs;
    std::vector<int64_t> value_counts;
  };

  void AccountRead(size_t bytes);
  void Throttle(size_t bytes);
  /// Disk backend: cached footer metadata for `file` (loads on first use).
  const DiskStore::FileMeta& MetaFor(const std::string& file) const;

  size_t block_size_;

  // Memory backend.
  mutable std::mutex mem_mu_;
  std::map<std::string, File> files_;

  // Serializes EnsureStored (and manifest writes) across sessions. Ordered
  // outermost: never taken while mem_mu_/meta_mu_ is held.
  std::mutex store_mu_;
  std::unique_ptr<SharedScanRegistry> shared_;

  // Disk backend (null in memory mode).
  std::unique_ptr<DiskStore> store_;
  std::unique_ptr<BufferPool> pool_;
  mutable std::mutex meta_mu_;
  mutable std::map<std::string, DiskStore::FileMeta> meta_;

  std::atomic<int64_t> blocks_read_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> stall_nanos_{0};
  double simulated_bandwidth_ = 0;
};

}  // namespace x100

#endif  // X100_STORAGE_COLUMNBM_H_
