#ifndef X100_STORAGE_SUMMARY_INDEX_H_
#define X100_STORAGE_SUMMARY_INDEX_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace x100 {

/// Summary index (§4.3, after Moerkotte's small materialized aggregates):
/// at a coarse granularity it records the running maximum from the start of
/// the fragment and the reversely-running minimum from the end. For a column
/// that is clustered (almost sorted), a range predicate lo <= v <= hi can be
/// narrowed to a #rowId range before scanning. Built on immutable fragments,
/// so it needs no maintenance; deltas are always scanned.
class SummaryIndex {
 public:
  struct RowRange {
    int64_t begin;
    int64_t end;  // exclusive
  };

  /// Builds over the logical (decoded) numeric values of `col`.
  static SummaryIndex Build(const Column& col, int granule);

  /// Conservative #rowId bounds: every fragment row r with lo <= v[r] <= hi
  /// satisfies begin <= r < end. Use ±infinity for one-sided predicates.
  RowRange Range(double lo, double hi) const;

  int granule() const { return granule_; }
  int64_t rows() const { return rows_; }

 private:
  SummaryIndex() = default;

  int granule_ = 0;
  int64_t rows_ = 0;
  // prefix_max_[k] = max(v[0 .. k*granule-1]); nondecreasing in k.
  std::vector<double> prefix_max_;
  // suffix_min_[k] = min(v[k*granule .. rows-1]); nondecreasing in k.
  std::vector<double> suffix_min_;
};

}  // namespace x100

#endif  // X100_STORAGE_SUMMARY_INDEX_H_
