#ifndef X100_STORAGE_PRINT_H_
#define X100_STORAGE_PRINT_H_

#include <algorithm>
#include <string>
#include <vector>

#include "storage/table.h"

namespace x100 {

/// Renders a Table as a column-aligned text grid (examples and debugging).
inline std::string FormatTable(const Table& t, int64_t max_rows = 50) {
  int nc = t.num_columns();
  int64_t n = std::min(t.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> width(nc);
  std::vector<std::string> header;
  for (int c = 0; c < nc; c++) {
    header.push_back(t.schema().field(c).name);
    width[c] = header[c].size();
  }
  for (int64_t r = 0; r < n; r++) {
    std::vector<std::string> row;
    for (int c = 0; c < nc; c++) {
      Value v = t.GetValue(r, c);
      // Single-character columns (l_returnflag etc.) display as characters.
      if (v.type() == TypeId::kI8 && v.AsI64() >= 32 && v.AsI64() < 127) {
        row.push_back(std::string(1, static_cast<char>(v.AsI64())));
      } else {
        row.push_back(v.ToString());
      }
      width[c] = std::max(width[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (int c = 0; c < nc; c++) {
      out += row[c];
      out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit(header);
  for (int c = 0; c < nc; c++) out.append(width[c], '-'), out.append(2, ' ');
  out += '\n';
  for (const auto& row : cells) emit(row);
  if (n < t.num_rows()) {
    out += "... (" + std::to_string(t.num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace x100

#endif  // X100_STORAGE_PRINT_H_
