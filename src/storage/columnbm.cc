#include "storage/columnbm.h"

#include <algorithm>
#include <cstring>

#include "common/metrics.h"
#include "common/profiling.h"
#include "storage/compression.h"
#include "common/status.h"

namespace x100 {

namespace {
// Registry mirrors of the per-instance stats, so BENCH_*.json snapshots see
// buffer-manager activity without threading ColumnBm pointers around.
struct BmMetrics {
  Counter* blocks_read;
  Counter* bytes_read;
  Counter* stall_nanos;
  static BmMetrics& Get() {
    static BmMetrics m = {
        MetricsRegistry::Get().GetCounter("columnbm.blocks_read"),
        MetricsRegistry::Get().GetCounter("columnbm.bytes_read"),
        MetricsRegistry::Get().GetCounter("columnbm.stall_nanos")};
    return m;
  }
};
}  // namespace

void ColumnBm::Store(const std::string& file, const Column& col) {
  File f;
  size_t total = col.bytes();
  const char* src = static_cast<const char*>(col.raw());
  for (size_t off = 0; off < total; off += block_size_) {
    size_t n = std::min(block_size_, total - off);
    auto blk = std::make_unique<char[]>(n);
    std::memcpy(blk.get(), src + off, n);
    f.blocks.push_back(std::move(blk));
    f.block_bytes.push_back(n);
  }
  files_[file] = std::move(f);
}

int64_t ColumnBm::NumBlocks(const std::string& file) const {
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  return static_cast<int64_t>(it->second.blocks.size());
}

void ColumnBm::AccountRead(size_t bytes) {
  stats_.blocks_read++;
  stats_.bytes_read += static_cast<int64_t>(bytes);
  BmMetrics::Get().blocks_read->Inc();
  BmMetrics::Get().bytes_read->Add(bytes);
}

void ColumnBm::Throttle(size_t bytes) {
  if (simulated_bandwidth_ <= 0) return;
  double secs = static_cast<double>(bytes) / simulated_bandwidth_;
  uint64_t start = NowNanos();
  uint64_t wait = static_cast<uint64_t>(secs * 1e9);
  while (NowNanos() - start < wait) {
  }
  uint64_t stalled = NowNanos() - start;
  stats_.stall_nanos += static_cast<int64_t>(stalled);
  BmMetrics::Get().stall_nanos->Add(stalled);
}

ColumnBm::BlockRef ColumnBm::ReadBlock(const std::string& file, int64_t b) {
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  File& f = it->second;
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(f.blocks.size()));
  AccountRead(f.block_bytes[b]);
  Throttle(f.block_bytes[b]);
  return {f.blocks[b].get(), f.block_bytes[b]};
}

size_t ColumnBm::StoreCompressed(const std::string& file, const Column& col,
                                 int64_t values_per_block) {
  X100_CHECK(IsIntegral(col.storage_type()) || col.is_enum());
  size_t w = TypeWidth(col.storage_type());
  File f;
  f.compressed = true;
  f.value_width = w;
  const char* src = static_cast<const char*>(col.raw());
  size_t total = 0;
  for (int64_t off = 0; off < col.size(); off += values_per_block) {
    int64_t n = std::min<int64_t>(values_per_block, col.size() - off);
    Buffer enc;
    size_t bytes = ForCodec::Encode(src + static_cast<size_t>(off) * w, n, w,
                                    &enc);
    auto blk = std::make_unique<char[]>(bytes);
    std::memcpy(blk.get(), enc.data(), bytes);
    f.blocks.push_back(std::move(blk));
    f.block_bytes.push_back(bytes);
    total += bytes;
  }
  files_[file] = std::move(f);
  return total;
}

int64_t ColumnBm::ReadDecompressed(const std::string& file, int64_t b,
                                   void* out) {
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  File& f = it->second;
  X100_CHECK(f.compressed);
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(f.blocks.size()));
  // Only the compressed bytes cross the simulated I/O boundary; decompression
  // is CPU work on the cache side (§4 "Cache").
  AccountRead(f.block_bytes[b]);
  Throttle(f.block_bytes[b]);
  return ForCodec::Decode(f.blocks[b].get(), out, f.value_width);
}

int64_t ColumnBm::CompressedBlockCount(const std::string& file,
                                       int64_t b) const {
  auto it = files_.find(file);
  X100_CHECK(it != files_.end() && it->second.compressed);
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(it->second.blocks.size()));
  return ForCodec::EncodedCount(it->second.blocks[b].get());
}

int64_t ColumnBm::FileBytes(const std::string& file) const {
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  int64_t total = 0;
  for (size_t bytes : it->second.block_bytes) {
    total += static_cast<int64_t>(bytes);
  }
  return total;
}

}  // namespace x100
