#include "storage/columnbm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/metrics.h"
#include "common/profiling.h"
#include "common/status.h"
#include "storage/compression.h"
#include "storage/shared_scan.h"

namespace x100 {

namespace {
// Registry mirrors of the per-instance stats, so BENCH_*.json snapshots see
// buffer-manager activity without threading ColumnBm pointers around.
struct BmMetrics {
  Counter* blocks_read;
  Counter* bytes_read;
  Counter* stall_nanos;
  static BmMetrics& Get() {
    static BmMetrics m = {
        MetricsRegistry::Get().GetCounter("columnbm.blocks_read"),
        MetricsRegistry::Get().GetCounter("columnbm.bytes_read"),
        MetricsRegistry::Get().GetCounter("columnbm.stall_nanos")};
    return m;
  }
};

std::string EnvDiskDir() {
  const char* env = std::getenv("X100_BM_DIR");
  return (env != nullptr && *env != '\0') ? env : "";
}

// Per-codec freeze-path accounting (bm.codec.<name>.blocks/bytes): how many
// blocks each codec won at StoreCompressed time and their stored sizes.
struct CodecMetrics {
  Counter* blocks[kNumCodecs];
  Counter* bytes[kNumCodecs];
  static CodecMetrics& Get() {
    static CodecMetrics m = [] {
      CodecMetrics cm;
      for (int i = 0; i < kNumCodecs; i++) {
        std::string name = Codec::All()[i]->name();
        cm.blocks[i] =
            MetricsRegistry::Get().GetCounter("bm.codec." + name + ".blocks");
        cm.bytes[i] =
            MetricsRegistry::Get().GetCounter("bm.codec." + name + ".bytes");
      }
      return cm;
    }();
    return m;
  }
  void Account(CodecId codec, size_t stored_bytes) {
    int i = static_cast<int>(codec);
    blocks[i]->Inc();
    bytes[i]->Add(stored_bytes);
  }
};

[[noreturn]] void ThrowIo(const Status& s) {
  throw std::runtime_error("ColumnBm: " + s.message());
}
}  // namespace

ColumnBm::ColumnBm(size_t block_size)
    : ColumnBm(Options{block_size, EnvDiskDir(), 0}) {}

ColumnBm::ColumnBm(const Options& opts)
    : block_size_(opts.block_size),
      shared_(std::make_unique<SharedScanRegistry>()) {
  if (!opts.disk_dir.empty()) {
    store_ = std::make_unique<DiskStore>(opts.disk_dir);
    pool_ = std::make_unique<BufferPool>(opts.pool_bytes);
  }
}

void ColumnBm::EnsureStored(const std::string& file,
                            const std::function<void()>& store) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (Contains(file)) return;
  store();
}

ColumnBm::~ColumnBm() = default;

void ColumnBm::Store(const std::string& file, const Column& col) {
  size_t total = col.bytes();
  const char* src = static_cast<const char*>(col.raw());
  if (disk_backed()) {
    Status s;
    std::unique_ptr<DiskStore::Writer> w =
        store_->NewFile(file, /*compressed=*/false, /*value_width=*/0, &s);
    if (w == nullptr) ThrowIo(s);
    for (size_t off = 0; off < total; off += block_size_) {
      size_t n = std::min(block_size_, total - off);
      s = w->AppendBlock(src + off, n, /*value_count=*/0);
      if (!s.ok()) ThrowIo(s);
    }
    s = w->Finish();
    if (!s.ok()) ThrowIo(s);
    std::lock_guard<std::mutex> lock(meta_mu_);
    meta_.erase(file);
    pool_->InvalidatePrefix(file + ":");
    return;
  }
  File f;
  for (size_t off = 0; off < total; off += block_size_) {
    size_t n = std::min(block_size_, total - off);
    auto blk = std::make_unique<char[]>(n);
    std::memcpy(blk.get(), src + off, n);
    f.blocks.push_back(std::move(blk));
    f.block_bytes.push_back(n);
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  files_[file] = std::move(f);
}

namespace {
// One block's freeze-path encode: sampled trial-encode selection unless the
// caller pinned a codec. Empty blocks keep the header-only FOR form so the
// value count stays self-describing.
size_t EncodeBlock(const char* src, int64_t n, size_t w,
                   std::optional<CodecId> force, Buffer* enc,
                   CodecId* chosen) {
  if (force.has_value() && n > 0) {
    *chosen = *force;
    return Codec::ForId(*force)->Encode(src, n, w, enc);
  }
  return EncodeBestCodec(src, n, w, enc, chosen);
}
}  // namespace

size_t ColumnBm::StoreCompressed(const std::string& file, const Column& col,
                                 int64_t values_per_block,
                                 std::optional<CodecId> force) {
  X100_CHECK(IsIntegral(col.storage_type()) || col.is_enum());
  size_t w = TypeWidth(col.storage_type());
  const char* src = static_cast<const char*>(col.raw());
  size_t total = 0;

  if (disk_backed()) {
    Status s;
    std::unique_ptr<DiskStore::Writer> wr =
        store_->NewFile(file, /*compressed=*/true, w, &s);
    if (wr == nullptr) ThrowIo(s);
    for (int64_t off = 0; off == 0 || off < col.size();
         off += values_per_block) {
      int64_t n = std::min<int64_t>(values_per_block, col.size() - off);
      Buffer enc;
      CodecId chosen;
      size_t bytes = EncodeBlock(src + static_cast<size_t>(off) * w, n, w,
                                 force, &enc, &chosen);
      s = wr->AppendBlock(enc.data(), bytes, n, chosen);
      if (!s.ok()) ThrowIo(s);
      CodecMetrics::Get().Account(chosen, bytes);
      total += bytes;
    }
    s = wr->Finish();
    if (!s.ok()) ThrowIo(s);
    std::lock_guard<std::mutex> lock(meta_mu_);
    meta_.erase(file);
    pool_->InvalidatePrefix(file + ":");
    return total;
  }

  File f;
  f.compressed = true;
  f.value_width = w;
  for (int64_t off = 0; off == 0 || off < col.size(); off += values_per_block) {
    int64_t n = std::min<int64_t>(values_per_block, col.size() - off);
    Buffer enc;
    CodecId chosen;
    size_t bytes = EncodeBlock(src + static_cast<size_t>(off) * w, n, w,
                               force, &enc, &chosen);
    auto blk = std::make_unique<char[]>(bytes);
    if (bytes > 0) std::memcpy(blk.get(), enc.data(), bytes);
    f.blocks.push_back(std::move(blk));
    f.block_bytes.push_back(bytes);
    f.codecs.push_back(chosen);
    f.value_counts.push_back(n);
    CodecMetrics::Get().Account(chosen, bytes);
    total += bytes;
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  files_[file] = std::move(f);
  return total;
}

bool ColumnBm::Contains(const std::string& file) const {
  if (disk_backed()) {
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      if (meta_.count(file) > 0) return true;
    }
    return store_->Exists(file);
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  return files_.find(file) != files_.end();
}

const DiskStore::FileMeta& ColumnBm::MetaFor(const std::string& file) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = meta_.find(file);
  if (it != meta_.end()) return it->second;
  DiskStore::FileMeta meta;
  Status s = store_->OpenMeta(file, &meta);
  if (!s.ok()) ThrowIo(s);
  return meta_.emplace(file, std::move(meta)).first->second;
}

int64_t ColumnBm::NumBlocks(const std::string& file) const {
  if (disk_backed()) {
    return static_cast<int64_t>(MetaFor(file).blocks.size());
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  return static_cast<int64_t>(it->second.blocks.size());
}

int64_t ColumnBm::FileBytes(const std::string& file) const {
  if (disk_backed()) {
    return static_cast<int64_t>(MetaFor(file).payload_bytes);
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  int64_t total = 0;
  for (size_t bytes : it->second.block_bytes) {
    total += static_cast<int64_t>(bytes);
  }
  return total;
}

size_t ColumnBm::BlockBytes(const std::string& file, int64_t b) const {
  if (disk_backed()) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    X100_CHECK(b >= 0 && b < static_cast<int64_t>(meta.blocks.size()));
    return meta.blocks[static_cast<size_t>(b)].bytes;
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(it->second.block_bytes.size()));
  return it->second.block_bytes[static_cast<size_t>(b)];
}

int64_t ColumnBm::CompressedBlockCount(const std::string& file,
                                       int64_t b) const {
  if (disk_backed()) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    X100_CHECK(meta.compressed);
    X100_CHECK(b >= 0 && b < static_cast<int64_t>(meta.blocks.size()));
    return meta.blocks[static_cast<size_t>(b)].value_count;
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  auto it = files_.find(file);
  X100_CHECK(it != files_.end() && it->second.compressed);
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(it->second.blocks.size()));
  return it->second.value_counts[static_cast<size_t>(b)];
}

CodecId ColumnBm::BlockCodec(const std::string& file, int64_t b) const {
  if (disk_backed()) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    X100_CHECK(b >= 0 && b < static_cast<int64_t>(meta.blocks.size()));
    return meta.blocks[static_cast<size_t>(b)].codec;
  }
  std::lock_guard<std::mutex> lock(mem_mu_);
  auto it = files_.find(file);
  X100_CHECK(it != files_.end());
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(it->second.blocks.size()));
  if (!it->second.compressed) return CodecId::kRaw;
  return it->second.codecs[static_cast<size_t>(b)];
}

void ColumnBm::AccountRead(size_t bytes) {
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
  BmMetrics::Get().blocks_read->Inc();
  BmMetrics::Get().bytes_read->Add(bytes);
}

void ColumnBm::Throttle(size_t bytes) {
  if (simulated_bandwidth_ <= 0) return;
  double secs = static_cast<double>(bytes) / simulated_bandwidth_;
  uint64_t start = NowNanos();
  uint64_t wait = static_cast<uint64_t>(secs * 1e9);
  while (NowNanos() - start < wait) {
  }
  uint64_t stalled = NowNanos() - start;
  stall_nanos_.fetch_add(static_cast<int64_t>(stalled),
                         std::memory_order_relaxed);
  BmMetrics::Get().stall_nanos->Add(stalled);
}

ColumnBm::BlockRef ColumnBm::ReadBlock(const std::string& file, int64_t b) {
  if (disk_backed()) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    X100_CHECK(b >= 0 && b < static_cast<int64_t>(meta.blocks.size()));
    size_t bytes = meta.blocks[static_cast<size_t>(b)].bytes;
    BufferPool::Pin pin;
    bool hit = false;
    Status s = pool_->GetOrLoad(
        file + ":" + std::to_string(b), bytes,
        [&](void* dst) {
          return store_->ReadBlock(file, meta, static_cast<size_t>(b), dst);
        },
        &pin, &hit);
    if (!s.ok()) ThrowIo(s);
    AccountRead(bytes);
    BlockRef ref;
    ref.data = pin.data();
    ref.bytes = bytes;
    ref.cache_hit = hit;
    ref.pin = std::move(pin);
    return ref;
  }

  File* f;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    auto it = files_.find(file);
    X100_CHECK(it != files_.end());
    f = &it->second;  // stable: stores never race with reads of `file`
  }
  X100_CHECK(b >= 0 && b < static_cast<int64_t>(f->blocks.size()));
  AccountRead(f->block_bytes[b]);
  Throttle(f->block_bytes[b]);
  BlockRef ref;
  ref.data = f->blocks[b].get();
  ref.bytes = f->block_bytes[b];
  return ref;
}

int64_t ColumnBm::ReadDecompressed(const std::string& file, int64_t b,
                                   void* out) {
  size_t width;
  CodecId codec;
  if (disk_backed()) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    X100_CHECK(meta.compressed);
    X100_CHECK(b >= 0 && b < static_cast<int64_t>(meta.blocks.size()));
    width = meta.value_width;
    codec = meta.blocks[static_cast<size_t>(b)].codec;
  } else {
    std::lock_guard<std::mutex> lock(mem_mu_);
    auto it = files_.find(file);
    X100_CHECK(it != files_.end() && it->second.compressed);
    X100_CHECK(b >= 0 &&
               b < static_cast<int64_t>(it->second.blocks.size()));
    width = it->second.value_width;
    codec = it->second.codecs[static_cast<size_t>(b)];
  }
  // Only the compressed bytes cross the I/O boundary; decompression is CPU
  // work on the cache side (§4 "Cache").
  BlockRef ref = ReadBlock(file, b);
  return Codec::ForId(codec)->Decode(ref.data, ref.bytes, out, width);
}

Status ColumnBm::WriteTableManifest(const std::string& table,
                                    const std::vector<std::string>& files) {
  if (!disk_backed()) return Status::OK();
  // Concurrent sessions opening the same table each write the manifest;
  // serialize so the file is never two writers' interleaving.
  std::lock_guard<std::mutex> lock(store_mu_);
  std::vector<DiskStore::ManifestEntry> entries;
  entries.reserve(files.size());
  for (const std::string& file : files) {
    const DiskStore::FileMeta& meta = MetaFor(file);
    DiskStore::ManifestEntry e;
    e.file = file;
    e.payload_bytes = meta.payload_bytes;
    e.num_blocks = meta.blocks.size();
    std::vector<uint32_t> crcs;
    crcs.reserve(meta.blocks.size());
    for (const DiskStore::BlockMeta& b : meta.blocks) crcs.push_back(b.crc);
    e.crc = Crc32(crcs.data(), crcs.size() * sizeof(uint32_t));
    e.compressed = meta.compressed;
    entries.push_back(std::move(e));
  }
  return store_->WriteManifest(table, entries);
}

}  // namespace x100
