#ifndef X100_PRIMITIVES_KERNELS_H_
#define X100_PRIMITIVES_KERNELS_H_

// Internal kernel templates behind the primitive generator. Each kernel is a
// tight loop over __restrict__ pointers so the compiler can loop-pipeline —
// the whole point of vectorized execution (§2, §4.2). Not part of the public
// API; include only from primitives/*.cc.

#include <cstdint>

namespace x100::kernels {

// ---- map kernels -----------------------------------------------------------

template <typename R, typename A, typename B, typename Op>
void MapColCol(int n, void* res, const void* const* args, const int* sel) {
  R* __restrict__ r = static_cast<R*>(res);
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B* __restrict__ b = static_cast<const B*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = Op::Apply(a[i], b[i]);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = Op::Apply(a[i], b[i]);
  }
}

template <typename R, typename A, typename B, typename Op>
void MapColVal(int n, void* res, const void* const* args, const int* sel) {
  R* __restrict__ r = static_cast<R*>(res);
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B v = *static_cast<const B*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = Op::Apply(a[i], v);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = Op::Apply(a[i], v);
  }
}

template <typename R, typename A, typename B, typename Op>
void MapValCol(int n, void* res, const void* const* args, const int* sel) {
  R* __restrict__ r = static_cast<R*>(res);
  const A v = *static_cast<const A*>(args[0]);
  const B* __restrict__ b = static_cast<const B*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = Op::Apply(v, b[i]);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = Op::Apply(v, b[i]);
  }
}

template <typename R, typename A, typename Op>
void MapUnaryCol(int n, void* res, const void* const* args, const int* sel) {
  R* __restrict__ r = static_cast<R*>(res);
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = Op::Apply(a[i]);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = Op::Apply(a[i]);
  }
}

// ---- select kernels --------------------------------------------------------

// Branching variant ("branch" in Figure 2): data-dependent IF.
template <typename A, typename B, typename Op>
int SelectColValBranch(int n, int* res_sel, const void* const* args, const int* sel) {
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B v = *static_cast<const B*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      if (Op::Apply(a[i], v)) res_sel[k++] = i;
    }
  } else {
    for (int i = 0; i < n; i++) {
      if (Op::Apply(a[i], v)) res_sel[k++] = i;
    }
  }
  return k;
}

// Predicated variant ("predicated" in Figure 2 / [17]): the comparison result
// advances the output cursor, no branch in the loop body.
template <typename A, typename B, typename Op>
int SelectColValPred(int n, int* res_sel, const void* const* args, const int* sel) {
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B v = *static_cast<const B*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      res_sel[k] = i;
      k += Op::Apply(a[i], v) ? 1 : 0;
    }
  } else {
    for (int i = 0; i < n; i++) {
      res_sel[k] = i;
      k += Op::Apply(a[i], v) ? 1 : 0;
    }
  }
  return k;
}

template <typename A, typename B, typename Op>
int SelectColColBranch(int n, int* res_sel, const void* const* args, const int* sel) {
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B* __restrict__ b = static_cast<const B*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      if (Op::Apply(a[i], b[i])) res_sel[k++] = i;
    }
  } else {
    for (int i = 0; i < n; i++) {
      if (Op::Apply(a[i], b[i])) res_sel[k++] = i;
    }
  }
  return k;
}

template <typename A, typename B, typename Op>
int SelectColColPred(int n, int* res_sel, const void* const* args, const int* sel) {
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B* __restrict__ b = static_cast<const B*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      res_sel[k] = i;
      k += Op::Apply(a[i], b[i]) ? 1 : 0;
    }
  } else {
    for (int i = 0; i < n; i++) {
      res_sel[k] = i;
      k += Op::Apply(a[i], b[i]) ? 1 : 0;
    }
  }
  return k;
}

// ---- aggregate-update kernels -----------------------------------------------

template <typename S, typename A, typename Op>
void AggrUpdate(int n, void* agg, const uint32_t* groups, const void* col,
                const int* sel) {
  S* __restrict__ acc = static_cast<S*>(agg);
  const A* __restrict__ a = static_cast<const A*>(col);
  if (groups) {
    if (sel) {
      for (int j = 0; j < n; j++) {
        int i = sel[j];
        Op::Update(&acc[groups[i]], a[i]);
      }
    } else {
      for (int i = 0; i < n; i++) Op::Update(&acc[groups[i]], a[i]);
    }
  } else {
    // Scalar aggregate: single accumulator, loop-pipelines fully.
    S local = acc[0];
    if (sel) {
      for (int j = 0; j < n; j++) Op::Update(&local, a[sel[j]]);
    } else {
      for (int i = 0; i < n; i++) Op::Update(&local, a[i]);
    }
    acc[0] = local;
  }
}

// ---- operator functors ------------------------------------------------------

struct AddOp { template <typename T> static T Apply(T a, T b) { return a + b; } };
struct SubOp { template <typename T> static T Apply(T a, T b) { return a - b; } };
struct MulOp { template <typename T> static T Apply(T a, T b) { return a * b; } };
struct DivOp { template <typename T> static T Apply(T a, T b) { return a / b; } };

struct LtOp { template <typename T> static bool Apply(T a, T b) { return a < b; } };
struct LeOp { template <typename T> static bool Apply(T a, T b) { return a <= b; } };
struct GtOp { template <typename T> static bool Apply(T a, T b) { return a > b; } };
struct GeOp { template <typename T> static bool Apply(T a, T b) { return a >= b; } };
struct EqOp { template <typename T> static bool Apply(T a, T b) { return a == b; } };
struct NeOp { template <typename T> static bool Apply(T a, T b) { return a != b; } };

struct SumOp {
  template <typename S, typename A>
  static void Update(S* acc, A v) { *acc += static_cast<S>(v); }
};
struct MinOp {
  template <typename S, typename A>
  static void Update(S* acc, A v) {
    S x = static_cast<S>(v);
    if (x < *acc) *acc = x;
  }
};
struct MaxOp {
  template <typename S, typename A>
  static void Update(S* acc, A v) {
    S x = static_cast<S>(v);
    if (x > *acc) *acc = x;
  }
};

}  // namespace x100::kernels

#endif  // X100_PRIMITIVES_KERNELS_H_
