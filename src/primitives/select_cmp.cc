#include <cstdint>

#include "primitives/kernels.h"
#include "primitives/primitive.h"

// Comparison select primitives: fill a selection vector with qualifying
// positions and return the count (§4.2 "select_* primitives"). Both code
// shapes from Figure 2 are generated: the default "branch" variant and a
// "predicated" variant (suffix `_pred`) whose cost is selectivity-independent.

namespace x100 {
namespace {

using namespace x100::kernels;

template <typename T, typename Op>
void RegisterCmp(PrimitiveRegistry* r, const char* op, const char* t) {
  std::string base = std::string("select_") + op + "_" + t;
  r->RegisterSelect(base + "_col_" + t + "_val", 2, &SelectColValBranch<T, T, Op>);
  r->RegisterSelect(base + "_col_" + t + "_val_pred", 2, &SelectColValPred<T, T, Op>);
  r->RegisterSelect(base + "_col_" + t + "_col", 2, &SelectColColBranch<T, T, Op>);
  r->RegisterSelect(base + "_col_" + t + "_col_pred", 2, &SelectColColPred<T, T, Op>);
}

template <typename T>
void RegisterAllCmp(PrimitiveRegistry* r, const char* t) {
  RegisterCmp<T, LtOp>(r, "lt", t);
  RegisterCmp<T, LeOp>(r, "le", t);
  RegisterCmp<T, GtOp>(r, "gt", t);
  RegisterCmp<T, GeOp>(r, "ge", t);
  RegisterCmp<T, EqOp>(r, "eq", t);
  RegisterCmp<T, NeOp>(r, "ne", t);
}

}  // namespace

void RegisterSelectCmp(PrimitiveRegistry* r) {
  RegisterAllCmp<int8_t>(r, "i8");
  RegisterAllCmp<uint8_t>(r, "u8");
  RegisterAllCmp<int16_t>(r, "i16");
  RegisterAllCmp<uint16_t>(r, "u16");
  RegisterAllCmp<int32_t>(r, "i32");
  RegisterAllCmp<int64_t>(r, "i64");
  RegisterAllCmp<double>(r, "f64");
}

}  // namespace x100
