#include <cstdint>

#include "primitives/kernels.h"
#include "primitives/primitive.h"

// Aggregate-update primitives (§4.2 "aggr_* primitives"). The operator owns
// initialization and the epilogue (AVG = SUM/COUNT happens in a Project, as in
// Figure 9); these primitives are the per-vector update step. Integer sums
// accumulate into int64 so SF=100-scale sums cannot overflow.

namespace x100 {
namespace {

using namespace x100::kernels;

void AggrCount(int n, void* agg, const uint32_t* groups, const void* col,
               const int* sel) {
  (void)col;
  int64_t* __restrict__ acc = static_cast<int64_t*>(agg);
  if (groups) {
    if (sel) {
      for (int j = 0; j < n; j++) acc[groups[sel[j]]]++;
    } else {
      for (int i = 0; i < n; i++) acc[groups[i]]++;
    }
  } else {
    acc[0] += n;
  }
}

}  // namespace

void RegisterAggrPrimitives(PrimitiveRegistry* r) {
  r->RegisterAggr("aggr_sum_f64_col", TypeId::kF64, &AggrUpdate<double, double, SumOp>);
  r->RegisterAggr("aggr_sum_i32_col", TypeId::kI64, &AggrUpdate<int64_t, int32_t, SumOp>);
  r->RegisterAggr("aggr_sum_i64_col", TypeId::kI64, &AggrUpdate<int64_t, int64_t, SumOp>);

  r->RegisterAggr("aggr_min_f64_col", TypeId::kF64, &AggrUpdate<double, double, MinOp>);
  r->RegisterAggr("aggr_min_i32_col", TypeId::kI32, &AggrUpdate<int32_t, int32_t, MinOp>);
  r->RegisterAggr("aggr_min_i64_col", TypeId::kI64, &AggrUpdate<int64_t, int64_t, MinOp>);

  r->RegisterAggr("aggr_max_f64_col", TypeId::kF64, &AggrUpdate<double, double, MaxOp>);
  r->RegisterAggr("aggr_max_i32_col", TypeId::kI32, &AggrUpdate<int32_t, int32_t, MaxOp>);
  r->RegisterAggr("aggr_max_i64_col", TypeId::kI64, &AggrUpdate<int64_t, int64_t, MaxOp>);

  r->RegisterAggr("aggr_count", TypeId::kI64, &AggrCount);
}

}  // namespace x100
