#include <cstdint>

#include "common/date.h"
#include "primitives/kernels.h"
#include "primitives/primitive.h"

// Cast map primitives: the `dbl(count_order)` style conversions of Figure 9
// plus the widenings the binder inserts for mixed-type arithmetic.

namespace x100 {
namespace {

using namespace x100::kernels;

template <typename To>
struct CastOp {
  template <typename From>
  static To Apply(From a) { return static_cast<To>(a); }
};

struct YearOp {
  static int32_t Apply(int32_t days) {
    int y;
    unsigned m, d;
    CivilFromDays(days, &y, &m, &d);
    return y;
  }
};

template <typename From, typename To>
void RegisterCast(PrimitiveRegistry* r, const char* from, const char* to) {
  r->RegisterMap(std::string("map_cast_") + to + "_" + from + "_col",
                 TypeTraits<To>::kId, 1, &MapUnaryCol<To, From, CastOp<To>>);
}

}  // namespace

void RegisterMapCast(PrimitiveRegistry* r) {
  RegisterCast<int8_t, int32_t>(r, "i8", "i32");
  RegisterCast<uint8_t, int32_t>(r, "u8", "i32");
  RegisterCast<int16_t, int32_t>(r, "i16", "i32");
  RegisterCast<uint16_t, int32_t>(r, "u16", "i32");
  RegisterCast<int32_t, int64_t>(r, "i32", "i64");
  RegisterCast<int32_t, double>(r, "i32", "f64");
  RegisterCast<int64_t, double>(r, "i64", "f64");
  RegisterCast<float, double>(r, "f32", "f64");
  RegisterCast<double, int64_t>(r, "f64", "i64");
  RegisterCast<int64_t, int32_t>(r, "i64", "i32");
  RegisterCast<uint8_t, uint16_t>(r, "u8", "u16");
  RegisterCast<uint8_t, int64_t>(r, "u8", "i64");
  RegisterCast<uint16_t, int64_t>(r, "u16", "i64");
  RegisterCast<int8_t, int64_t>(r, "i8", "i64");
  RegisterCast<int16_t, int64_t>(r, "i16", "i64");

  // Calendar-year extraction from a date column (EXTRACT(year ...)).
  r->RegisterMap("map_year_i32_col", TypeId::kI32, 1,
                 &MapUnaryCol<int32_t, int32_t, YearOp>);
}

}  // namespace x100
