#include <cstdint>

#include "primitives/primitive.h"

// Compound primitives (§4.2): whole expression sub-trees compiled into one
// loop, so intermediates flow through registers instead of load/store —
// the paper measures these at ~2x the chained single-primitive cost.
//
//   map_fused_submul_f64: res = (V - a) * b      — Q1's (1 - discount) * price
//   map_fused_addmul_f64: res = (V + a) * b      — Q1's (1 + tax) * discountprice
//   map_mahalanobis_f64:  res = ((a - b)^2) / c  — the paper's example
//                          /(square(-(double*, double*)), double*)

namespace x100 {
namespace {

// args = {a (col), b (col), V (val)}.
void MapFusedSubMul(int n, void* res, const void* const* args, const int* sel) {
  double* __restrict__ r = static_cast<double*>(res);
  const double* __restrict__ a = static_cast<const double*>(args[0]);
  const double* __restrict__ b = static_cast<const double*>(args[1]);
  const double v = *static_cast<const double*>(args[2]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = (v - a[i]) * b[i];
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = (v - a[i]) * b[i];
  }
}

void MapFusedAddMul(int n, void* res, const void* const* args, const int* sel) {
  double* __restrict__ r = static_cast<double*>(res);
  const double* __restrict__ a = static_cast<const double*>(args[0]);
  const double* __restrict__ b = static_cast<const double*>(args[1]);
  const double v = *static_cast<const double*>(args[2]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = (v + a[i]) * b[i];
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = (v + a[i]) * b[i];
  }
}

// args = {a (col), b (col), c (col)}.
void MapMahalanobis(int n, void* res, const void* const* args, const int* sel) {
  double* __restrict__ r = static_cast<double*>(res);
  const double* __restrict__ a = static_cast<const double*>(args[0]);
  const double* __restrict__ b = static_cast<const double*>(args[1]);
  const double* __restrict__ c = static_cast<const double*>(args[2]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      double d = a[i] - b[i];
      r[i] = d * d / c[i];
    }
  } else {
    for (int i = 0; i < n; i++) {
      double d = a[i] - b[i];
      r[i] = d * d / c[i];
    }
  }
}

}  // namespace

void RegisterCompoundPrimitives(PrimitiveRegistry* r) {
  r->RegisterMap("map_fused_submul_f64", TypeId::kF64, 3, &MapFusedSubMul);
  r->RegisterMap("map_fused_addmul_f64", TypeId::kF64, 3, &MapFusedAddMul);
  r->RegisterMap("map_mahalanobis_f64", TypeId::kF64, 3, &MapMahalanobis);
}

}  // namespace x100
