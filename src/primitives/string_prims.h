#ifndef X100_PRIMITIVES_STRING_PRIMS_H_
#define X100_PRIMITIVES_STRING_PRIMS_H_

namespace x100 {

/// SQL LIKE matcher ('%' any run, '_' any single char); exposed for the MIL
/// and tuple engines, which interpret the same predicate per value.
bool LikeMatch(const char* s, const char* pat);

}  // namespace x100

#endif  // X100_PRIMITIVES_STRING_PRIMS_H_
