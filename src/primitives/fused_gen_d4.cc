#include "primitives/fused_gen.h"

// Depth-4 fused chains (f64, add/sub/mul, prev-first extensions plus
// scale-by-constant): the longest shapes are the rarest and the costliest
// to instantiate, so only the accumulate/scale patterns are pre-generated
// (e.g. ((a-b)*c+d, (a*b+c)*V). Anything else shrinks to a depth-3 or -2
// fused prefix in the binder via registry miss.

namespace x100::fused_gen {

namespace {

using First = CatT<Bin3<OpK::kAdd>, Bin3<OpK::kSub>, Bin3<OpK::kMul>>;
using Ext = L<St<OpK::kAdd, Shape::kPC>, St<OpK::kSub, Shape::kPC>,
              St<OpK::kMul, Shape::kPC>, St<OpK::kMul, Shape::kPV>>;

}  // namespace

void RegisterFusedD4(PrimitiveRegistry* r) {
  Gen4<double, First, Ext, Ext, Ext>(r);  // 9 × 4 × 4 × 4
}

}  // namespace x100::fused_gen
