#ifndef X100_PRIMITIVES_FUSED_H_
#define X100_PRIMITIVES_FUSED_H_

// Shared vocabulary of the fused-chain kernel generator (fused_gen.h) and
// the binder's chain pattern-matcher (exec/bound_expr.cc). A fused kernel
// evaluates a *linear chain* of 2..kMaxFusedChain arithmetic nodes in one
// loop, keeping every intermediate in a register (§4.2 compound
// primitives, generalized). Both sides compose the same canonical registry
// name from the chain's (op, shape) steps, so a registry hit is the
// adaptive "can we fuse this?" test.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace x100::fused {

/// Longest chain the generator instantiates kernels for.
inline constexpr int kMaxFusedChain = 4;

/// Most operand slots a chain can consume: a binary first step (2) plus
/// three binary extensions (1 each).
inline constexpr int kMaxFusedArgs = 5;

enum class OpK : uint8_t { kAdd, kSub, kMul, kDiv, kNeg, kSquare };

/// Operand shape of one chain step. The first step has no previous value;
/// extension steps combine the running value (`p`) with at most one leaf.
/// Leaf operands are `c` (column) or `v` (single value / constant). `cp` and
/// `vp` are kept distinct from `pc`/`pv`: FP ops are not commutative at the
/// bit level (NaN payload propagation follows operand order on SSE).
enum class Shape : uint8_t {
  kCC, kCV, kVC,  // first step, binary: col op col / col op val / val op col
  kC,             // first step, unary over a column
  kPC, kPV,       // extension: prev op col / prev op val
  kCP, kVP,       // extension: col op prev / val op prev
  kP,             // extension, unary over prev
};

constexpr bool IsUnaryOp(OpK op) { return op == OpK::kNeg || op == OpK::kSquare; }

/// Operand slots the step consumes from the primitive's args array.
constexpr int Slots(Shape s) {
  switch (s) {
    case Shape::kCC:
    case Shape::kCV:
    case Shape::kVC:
      return 2;
    case Shape::kP:
      return 0;
    default:
      return 1;
  }
}

constexpr const char* OpToken(OpK op) {
  switch (op) {
    case OpK::kAdd:    return "add";
    case OpK::kSub:    return "sub";
    case OpK::kMul:    return "mul";
    case OpK::kDiv:    return "div";
    case OpK::kNeg:    return "neg";
    case OpK::kSquare: return "square";
  }
  return "?";
}

constexpr const char* ShapeToken(Shape s) {
  switch (s) {
    case Shape::kCC: return "cc";
    case Shape::kCV: return "cv";
    case Shape::kVC: return "vc";
    case Shape::kC:  return "c";
    case Shape::kPC: return "pc";
    case Shape::kPV: return "pv";
    case Shape::kCP: return "cp";
    case Shape::kVP: return "vp";
    case Shape::kP:  return "p";
  }
  return "?";
}

using StepSig = std::pair<OpK, Shape>;

/// Canonical registry name, e.g. map_fused_sub_vc_mul_pc_f64 for
/// (V - a) * b over doubles.
inline std::string KernelName(TypeId t, const std::vector<StepSig>& steps) {
  std::string name = "map_fused";
  for (const StepSig& s : steps) {
    name += std::string("_") + OpToken(s.first) + "_" + ShapeToken(s.second);
  }
  name += std::string("_") + TypeName(t);
  return name;
}

/// EXPLAIN ANALYZE label, e.g. fused[sub>mul].
inline std::string DisplayName(const std::vector<StepSig>& steps) {
  std::string name = "fused[";
  for (size_t i = 0; i < steps.size(); i++) {
    if (i > 0) name += ">";
    name += OpToken(steps[i].first);
  }
  return name + "]";
}

}  // namespace x100::fused

#endif  // X100_PRIMITIVES_FUSED_H_
