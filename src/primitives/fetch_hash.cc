#include <cstdint>

#include "common/hash.h"
#include "primitives/kernels.h"
#include "primitives/primitive.h"

// Fetch (positional gather), hash and direct-grouping primitives.
//
// map_fetch_* is the kernel behind Fetch1Join and enumeration-type decoding
// (§4.3): res[i] = base[idx[i]], where `base` is an entire stored column and
// `idx` a vector of #rowIds / enum codes. map_hash_* / map_rehash_* feed hash
// aggregation and hash join; map_directgrp_* computes array indices for
// direct aggregation from small bit-domains (§4.1.2, the Table 5 trace).

namespace x100 {
namespace {

// res[i] = base[idx[i]]; args = {idx column, base array (whole column)}.
template <typename T, typename Idx>
void MapFetch(int n, void* res, const void* const* args, const int* sel) {
  T* __restrict__ r = static_cast<T*>(res);
  const Idx* __restrict__ idx = static_cast<const Idx*>(args[0]);
  const T* __restrict__ base = static_cast<const T*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = base[idx[i]];
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = base[idx[i]];
  }
}

template <typename T>
void MapHash(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const T* __restrict__ a = static_cast<const T*>(args[0]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashU64(static_cast<uint64_t>(a[i]));
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = HashU64(static_cast<uint64_t>(a[i]));
  }
}

void MapHashF64(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const double* __restrict__ a = static_cast<const double*>(args[0]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashF64(a[i]);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = HashF64(a[i]);
  }
}

void MapHashStr(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const char* const* __restrict__ a = static_cast<const char* const*>(args[0]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashStr(a[i]);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = HashStr(a[i]);
  }
}

// res[i] = combine(prev[i], hash(a[i])); args = {value column, prev hash column}.
template <typename T>
void MapRehash(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const T* __restrict__ a = static_cast<const T*>(args[0]);
  const uint64_t* __restrict__ prev = static_cast<const uint64_t*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashCombine(prev[i], HashU64(static_cast<uint64_t>(a[i])));
    }
  } else {
    for (int i = 0; i < n; i++) {
      r[i] = HashCombine(prev[i], HashU64(static_cast<uint64_t>(a[i])));
    }
  }
}

void MapRehashF64(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const double* __restrict__ a = static_cast<const double*>(args[0]);
  const uint64_t* __restrict__ prev = static_cast<const uint64_t*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashCombine(prev[i], HashF64(a[i]));
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = HashCombine(prev[i], HashF64(a[i]));
  }
}

void MapRehashStr(int n, void* res, const void* const* args, const int* sel) {
  uint64_t* __restrict__ r = static_cast<uint64_t*>(res);
  const char* const* __restrict__ a = static_cast<const char* const*>(args[0]);
  const uint64_t* __restrict__ prev = static_cast<const uint64_t*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = HashCombine(prev[i], HashStr(a[i]));
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = HashCombine(prev[i], HashStr(a[i]));
  }
}

// Group index from two single-byte columns: g = hi<<8 | lo (the hard-coded
// Q1 trick of §3.3, and the map_directgrp of Table 5).
template <typename A, typename B>
void MapDirectGrp2(int n, void* res, const void* const* args, const int* sel) {
  uint32_t* __restrict__ r = static_cast<uint32_t*>(res);
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  const B* __restrict__ b = static_cast<const B*>(args[1]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = (static_cast<uint32_t>(static_cast<uint8_t>(a[i])) << 8) |
             static_cast<uint32_t>(static_cast<uint8_t>(b[i]));
    }
  } else {
    for (int i = 0; i < n; i++) {
      r[i] = (static_cast<uint32_t>(static_cast<uint8_t>(a[i])) << 8) |
             static_cast<uint32_t>(static_cast<uint8_t>(b[i]));
    }
  }
}

template <typename A>
void MapDirectGrp1(int n, void* res, const void* const* args, const int* sel) {
  uint32_t* __restrict__ r = static_cast<uint32_t*>(res);
  const A* __restrict__ a = static_cast<const A*>(args[0]);
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = static_cast<uint32_t>(static_cast<uint16_t>(a[i]));
    }
  } else {
    for (int i = 0; i < n; i++) {
      r[i] = static_cast<uint32_t>(static_cast<uint16_t>(a[i]));
    }
  }
}

template <typename T, typename Idx>
void RegisterFetch(PrimitiveRegistry* r, const char* t, const char* idx) {
  r->RegisterMap(std::string("map_fetch_") + t + "_col_" + idx + "_col",
                 TypeTraits<T>::kId, 2, &MapFetch<T, Idx>);
}

template <typename Idx>
void RegisterFetchAll(PrimitiveRegistry* r, const char* idx) {
  RegisterFetch<int8_t, Idx>(r, "i8", idx);
  RegisterFetch<uint8_t, Idx>(r, "u8", idx);
  RegisterFetch<int16_t, Idx>(r, "i16", idx);
  RegisterFetch<uint16_t, Idx>(r, "u16", idx);
  RegisterFetch<int32_t, Idx>(r, "i32", idx);
  RegisterFetch<int64_t, Idx>(r, "i64", idx);
  RegisterFetch<double, Idx>(r, "f64", idx);
  RegisterFetch<const char*, Idx>(r, "str", idx);
}

}  // namespace

void RegisterFetchHash(PrimitiveRegistry* r) {
  RegisterFetchAll<uint8_t>(r, "u8");
  RegisterFetchAll<uint16_t>(r, "u16");
  RegisterFetchAll<int32_t>(r, "i32");
  RegisterFetchAll<int64_t>(r, "i64");

  r->RegisterMap("map_hash_i8_col", TypeId::kI64, 1, &MapHash<int8_t>);
  r->RegisterMap("map_hash_u8_col", TypeId::kI64, 1, &MapHash<uint8_t>);
  r->RegisterMap("map_hash_i16_col", TypeId::kI64, 1, &MapHash<int16_t>);
  r->RegisterMap("map_hash_u16_col", TypeId::kI64, 1, &MapHash<uint16_t>);
  r->RegisterMap("map_hash_i32_col", TypeId::kI64, 1, &MapHash<int32_t>);
  r->RegisterMap("map_hash_i64_col", TypeId::kI64, 1, &MapHash<int64_t>);
  r->RegisterMap("map_hash_f64_col", TypeId::kI64, 1, &MapHashF64);
  r->RegisterMap("map_hash_str_col", TypeId::kI64, 1, &MapHashStr);

  r->RegisterMap("map_rehash_i8_col", TypeId::kI64, 2, &MapRehash<int8_t>);
  r->RegisterMap("map_rehash_u8_col", TypeId::kI64, 2, &MapRehash<uint8_t>);
  r->RegisterMap("map_rehash_i16_col", TypeId::kI64, 2, &MapRehash<int16_t>);
  r->RegisterMap("map_rehash_u16_col", TypeId::kI64, 2, &MapRehash<uint16_t>);
  r->RegisterMap("map_rehash_i32_col", TypeId::kI64, 2, &MapRehash<int32_t>);
  r->RegisterMap("map_rehash_i64_col", TypeId::kI64, 2, &MapRehash<int64_t>);
  r->RegisterMap("map_rehash_f64_col", TypeId::kI64, 2, &MapRehashF64);
  r->RegisterMap("map_rehash_str_col", TypeId::kI64, 2, &MapRehashStr);

  r->RegisterMap("map_directgrp_i8_col_i8_col", TypeId::kI32, 2,
                 &MapDirectGrp2<int8_t, int8_t>);
  r->RegisterMap("map_directgrp_u8_col_u8_col", TypeId::kI32, 2,
                 &MapDirectGrp2<uint8_t, uint8_t>);
  r->RegisterMap("map_directgrp_i8_col", TypeId::kI32, 1, &MapDirectGrp1<int8_t>);
  r->RegisterMap("map_directgrp_u8_col", TypeId::kI32, 1, &MapDirectGrp1<uint8_t>);
  r->RegisterMap("map_directgrp_u16_col", TypeId::kI32, 1, &MapDirectGrp1<uint16_t>);
}

}  // namespace x100
