#include "primitives/primitive.h"

#include "common/status.h"

namespace x100 {

const PrimitiveRegistry& PrimitiveRegistry::Get() {
  static PrimitiveRegistry* const kRegistry = [] {
    auto* r = new PrimitiveRegistry();
    RegisterMapArith(r);
    RegisterMapCast(r);
    RegisterSelectCmp(r);
    RegisterAggrPrimitives(r);
    RegisterFetchHash(r);
    RegisterStringPrimitives(r);
    RegisterCompoundPrimitives(r);
    RegisterFusedChainPrimitives(r);
    return r;
  }();
  return *kRegistry;
}

const MapPrimitive* PrimitiveRegistry::FindMap(const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : &it->second;
}

const SelectPrimitive* PrimitiveRegistry::FindSelect(const std::string& name) const {
  auto it = selects_.find(name);
  return it == selects_.end() ? nullptr : &it->second;
}

const AggrPrimitive* PrimitiveRegistry::FindAggr(const std::string& name) const {
  auto it = aggrs_.find(name);
  return it == aggrs_.end() ? nullptr : &it->second;
}

void PrimitiveRegistry::RegisterMap(const std::string& name, TypeId result,
                                    int num_args, MapFn fn) {
  X100_CHECK(maps_.emplace(name, MapPrimitive{result, num_args, fn}).second);
}

void PrimitiveRegistry::RegisterSelect(const std::string& name, int num_args,
                                       SelectFn fn) {
  X100_CHECK(selects_.emplace(name, SelectPrimitive{num_args, fn}).second);
}

void PrimitiveRegistry::RegisterAggr(const std::string& name, TypeId state,
                                     AggrFn fn) {
  X100_CHECK(aggrs_.emplace(name, AggrPrimitive{state, fn}).second);
}

std::vector<std::string> PrimitiveRegistry::MapNames() const {
  std::vector<std::string> names;
  names.reserve(maps_.size());
  for (const auto& [name, prim] : maps_) names.push_back(name);
  return names;
}

}  // namespace x100
