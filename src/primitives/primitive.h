#ifndef X100_PRIMITIVES_PRIMITIVE_H_
#define X100_PRIMITIVES_PRIMITIVE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace x100 {

/// Vectorized execution primitives (§4.2).
///
/// X100 generates hundreds of primitives from patterns; here the generator is
/// a template + macro layer (see map_arith.cc etc.) and every instantiation is
/// registered under its paper-style signature name, e.g.
///   map_add_f64_col_f64_col, select_lt_i32_col_i32_val, aggr_sum_f64_col.
///
/// All primitives accept an optional selection vector `sel` (ascending
/// positions, `n` entries when present): results are written *at the selected
/// positions*, leaving unselected slots untouched, exactly as in §4.1.1.

/// Map primitive: res[i] = f(args...[i]) for the n (selected) positions.
/// `args` point at column data or at a single constant, fixed at bind time by
/// the _col/_val suffixes in the name.
using MapFn = void (*)(int n, void* res, const void* const* args, const int* sel);

/// Select primitive: fills `res_sel` with qualifying positions, returns how
/// many. When `sel` is non-null only those positions are tested (chained
/// conjunctions keep selection vectors ascending).
using SelectFn = int (*)(int n, int* res_sel, const void* const* args, const int* sel);

/// Aggregate-update primitive: agg[group[i]] op= col[i] for the n (selected)
/// positions. `groups` may be null, meaning group 0 (scalar aggregates).
using AggrFn = void (*)(int n, void* agg, const uint32_t* groups, const void* col,
                        const int* sel);

struct MapPrimitive {
  TypeId result;
  int num_args;
  MapFn fn;
};

struct SelectPrimitive {
  int num_args;
  SelectFn fn;
};

struct AggrPrimitive {
  TypeId state_type;  // accumulator slot type (i32 sums widen to i64)
  AggrFn fn;
};

/// Name → primitive tables, built once. The exec-layer binder composes names
/// from expression trees and resolves them here (the analogue of the paper's
/// signature-request files resolved against generated code).
class PrimitiveRegistry {
 public:
  static const PrimitiveRegistry& Get();

  const MapPrimitive* FindMap(const std::string& name) const;
  const SelectPrimitive* FindSelect(const std::string& name) const;
  const AggrPrimitive* FindAggr(const std::string& name) const;

  void RegisterMap(const std::string& name, TypeId result, int num_args, MapFn fn);
  void RegisterSelect(const std::string& name, int num_args, SelectFn fn);
  void RegisterAggr(const std::string& name, TypeId state, AggrFn fn);

  /// Number of registered primitives (the paper quotes "hundreds").
  size_t size() const { return maps_.size() + selects_.size() + aggrs_.size(); }

  std::vector<std::string> MapNames() const;

 private:
  PrimitiveRegistry() = default;

  std::map<std::string, MapPrimitive> maps_;
  std::map<std::string, SelectPrimitive> selects_;
  std::map<std::string, AggrPrimitive> aggrs_;
};

// Per-family registration hooks, called once from PrimitiveRegistry::Get().
void RegisterMapArith(PrimitiveRegistry* r);
void RegisterMapCast(PrimitiveRegistry* r);
void RegisterSelectCmp(PrimitiveRegistry* r);
void RegisterAggrPrimitives(PrimitiveRegistry* r);
void RegisterFetchHash(PrimitiveRegistry* r);
void RegisterStringPrimitives(PrimitiveRegistry* r);
void RegisterCompoundPrimitives(PrimitiveRegistry* r);
void RegisterFusedChainPrimitives(PrimitiveRegistry* r);

}  // namespace x100

#endif  // X100_PRIMITIVES_PRIMITIVE_H_
