#include <cstring>
#include <string>

#include "primitives/primitive.h"

// String select primitives: comparisons on heap-pointer columns, plus SQL
// LIKE matching. These give string-typed ADTs first-class primitive status,
// the extensibility point §4.2 contrasts with UDF-style per-value calls.

namespace x100 {

// SQL LIKE with '%' (any run) and '_' (any single char); iterative
// backtracking matcher, no allocation.
bool LikeMatch(const char* s, const char* pat) {
  const char* star_pat = nullptr;
  const char* star_s = nullptr;
  while (*s) {
    if (*pat == '%') {
      star_pat = ++pat;
      star_s = s;
      if (!*pat) return true;
    } else if (*pat == '_' || *pat == *s) {
      pat++;
      s++;
    } else if (star_pat) {
      pat = star_pat;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (*pat == '%') pat++;
  return *pat == '\0';
}

namespace {

struct StrLt { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) < 0; } };
struct StrLe { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) <= 0; } };
struct StrGt { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) > 0; } };
struct StrGe { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) >= 0; } };
struct StrEq { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) == 0; } };
struct StrNe { static bool Apply(const char* a, const char* b) { return std::strcmp(a, b) != 0; } };
struct StrLike {
  static bool Apply(const char* a, const char* b) { return LikeMatch(a, b); }
};
struct StrNotLike {
  static bool Apply(const char* a, const char* b) { return !LikeMatch(a, b); }
};

template <typename Op>
int SelectStrColVal(int n, int* res_sel, const void* const* args, const int* sel) {
  const char* const* a = static_cast<const char* const*>(args[0]);
  const char* v = *static_cast<const char* const*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      if (Op::Apply(a[i], v)) res_sel[k++] = i;
    }
  } else {
    for (int i = 0; i < n; i++) {
      if (Op::Apply(a[i], v)) res_sel[k++] = i;
    }
  }
  return k;
}

template <typename Op>
int SelectStrColCol(int n, int* res_sel, const void* const* args, const int* sel) {
  const char* const* a = static_cast<const char* const*>(args[0]);
  const char* const* b = static_cast<const char* const*>(args[1]);
  int k = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      if (Op::Apply(a[i], b[i])) res_sel[k++] = i;
    }
  } else {
    for (int i = 0; i < n; i++) {
      if (Op::Apply(a[i], b[i])) res_sel[k++] = i;
    }
  }
  return k;
}

template <typename Op>
void RegisterStrCmp(PrimitiveRegistry* r, const char* op) {
  r->RegisterSelect(std::string("select_") + op + "_str_col_str_val", 2,
                    &SelectStrColVal<Op>);
  r->RegisterSelect(std::string("select_") + op + "_str_col_str_col", 2,
                    &SelectStrColCol<Op>);
}

}  // namespace

void RegisterStringPrimitives(PrimitiveRegistry* r) {
  RegisterStrCmp<StrLt>(r, "lt");
  RegisterStrCmp<StrLe>(r, "le");
  RegisterStrCmp<StrGt>(r, "gt");
  RegisterStrCmp<StrGe>(r, "ge");
  RegisterStrCmp<StrEq>(r, "eq");
  RegisterStrCmp<StrNe>(r, "ne");
  RegisterStrCmp<StrLike>(r, "like");
  RegisterStrCmp<StrNotLike>(r, "notlike");
}

}  // namespace x100
