#include "primitives/fused_gen.h"

// Depth-3 fused chains (f64 only — long i64 chains fall back to the
// interpreted path via registry miss). Deep chains pay compile time per
// instantiation, so only the common prev-first extension direction is
// enumerated; the binder shrinks a chain until its name hits the registry,
// so a missing depth-3 shape binds as a depth-2 fused step plus one
// interpreted step, never worse than that. Two disjoint families:
//   - binary middle (add/sub/mul of prev with a leaf);
//   - unary middle (neg/square of the running value), which covers the
//     paper's mahalanobis shape sub_cc > square_p > div_pc.

namespace x100::fused_gen {

namespace {

using ExtMid = CatT<Ext2<OpK::kAdd>, Ext2<OpK::kSub>, Ext2<OpK::kMul>>;
using ExtLast = CatT<ExtMid, Ext2<OpK::kDiv>,
                     L<St<OpK::kNeg, Shape::kP>, St<OpK::kSquare, Shape::kP>>>;
using UnaryExt = L<St<OpK::kNeg, Shape::kP>, St<OpK::kSquare, Shape::kP>>;

}  // namespace

void RegisterFusedD3(PrimitiveRegistry* r) {
  Gen3<double, FirstF64, ExtMid, ExtLast>(r);    // 14 × 6 × 10
  Gen3<double, FirstF64, UnaryExt, ExtLast>(r);  // 14 × 2 × 10
}

}  // namespace x100::fused_gen
