#include "primitives/fused_gen.h"

// Depth-2 fused chains: the full f64 cross product (every binary op and
// shape on both steps, plus unary neg/square) and the i64 subset — no i64
// div (SIGFPE / INT64_MIN÷-1 hazards stay in the interpreted kernels where
// both paths share them) and no i64 square (the generic binder computes
// square in f64, so an i64 square chain can never be type-uniform).

namespace x100::fused_gen {

namespace {

using FirstI64 = CatT<Bin3<OpK::kAdd>, Bin3<OpK::kSub>, Bin3<OpK::kMul>,
                      L<St<OpK::kNeg, Shape::kC>>>;
using ExtI64 = CatT<Ext4<OpK::kAdd>, Ext4<OpK::kSub>, Ext4<OpK::kMul>,
                    L<St<OpK::kNeg, Shape::kP>>>;

}  // namespace

void RegisterFusedD2(PrimitiveRegistry* r) {
  Gen2<double, FirstF64, ExtFullF64>(r);  // 14 × 18
  Gen2<int64_t, FirstI64, ExtI64>(r);     // 10 × 13
}

}  // namespace x100::fused_gen

namespace x100 {

void RegisterFusedChainPrimitives(PrimitiveRegistry* r) {
  fused_gen::RegisterFusedD2(r);
  fused_gen::RegisterFusedD3(r);
  fused_gen::RegisterFusedD4(r);
}

}  // namespace x100
