#include <cmath>
#include <cstdint>

#include "primitives/kernels.h"
#include "primitives/primitive.h"

// Arithmetic map primitives. Analogue of the paper's pattern
//   any::1 +(any::1 x, any::1 y) plus = x + y
// expanded over the numeric types and the (col,val) cross-product requested by
// the signature file (§4.2).

namespace x100 {
namespace {

using namespace x100::kernels;

struct SqrtOp {
  static double Apply(double a) { return std::sqrt(a); }
};
struct SquareOp {
  template <typename T> static T Apply(T a) { return a * a; }
};
struct NegOp {
  template <typename T> static T Apply(T a) { return -a; }
};

template <typename T, typename Op>
void RegisterBinary(PrimitiveRegistry* r, const char* op, const char* t) {
  std::string base = std::string("map_") + op + "_" + t;
  r->RegisterMap(base + "_col_" + t + "_col", TypeTraits<T>::kId, 2,
                 &MapColCol<T, T, T, Op>);
  r->RegisterMap(base + "_col_" + t + "_val", TypeTraits<T>::kId, 2,
                 &MapColVal<T, T, T, Op>);
  r->RegisterMap(base + "_val_" + t + "_col", TypeTraits<T>::kId, 2,
                 &MapValCol<T, T, T, Op>);
}

template <typename T>
void RegisterAllBinary(PrimitiveRegistry* r, const char* t) {
  RegisterBinary<T, AddOp>(r, "add", t);
  RegisterBinary<T, SubOp>(r, "sub", t);
  RegisterBinary<T, MulOp>(r, "mul", t);
  RegisterBinary<T, DivOp>(r, "div", t);
}

}  // namespace

void RegisterMapArith(PrimitiveRegistry* r) {
  RegisterAllBinary<int32_t>(r, "i32");
  RegisterAllBinary<int64_t>(r, "i64");
  RegisterAllBinary<double>(r, "f64");

  r->RegisterMap("map_square_f64_col", TypeId::kF64, 1,
                 &MapUnaryCol<double, double, SquareOp>);
  r->RegisterMap("map_sqrt_f64_col", TypeId::kF64, 1,
                 &MapUnaryCol<double, double, SqrtOp>);
  r->RegisterMap("map_neg_f64_col", TypeId::kF64, 1,
                 &MapUnaryCol<double, double, NegOp>);
  r->RegisterMap("map_neg_i64_col", TypeId::kI64, 1,
                 &MapUnaryCol<int64_t, int64_t, NegOp>);
}

}  // namespace x100
