#ifndef X100_PRIMITIVES_FUSED_GEN_H_
#define X100_PRIMITIVES_FUSED_GEN_H_

// Template-metaprogramming kernel generator for fused map-primitive chains.
// One FusedMap<T, Steps...> instantiation evaluates a whole 2..4-node chain
// of add/sub/mul/div/neg/square per element, intermediates never leaving
// registers — the paper's §4.2 compound primitives, but enumerated
// mechanically over (op × operand-shape) step descriptors instead of
// hand-written per pattern. The enumeration TUs (fused_gen_d*.cc) register
// every instantiation under its fused::KernelName; the binder then treats a
// registry hit as "this chain shape is fusable".
//
// Include only from primitives/fused_gen_d*.cc — each enumeration lives in
// its own TU so the ~5k instantiations compile in parallel.

#include <cstdint>
#include <utility>
#include <vector>

#include "primitives/fused.h"
#include "primitives/primitive.h"

namespace x100::fused_gen {

using fused::OpK;
using fused::Shape;

/// Compile-time chain step descriptor.
template <OpK O, Shape S>
struct St {
  static constexpr OpK kOp = O;
  static constexpr Shape kShape = S;
};

template <typename T, OpK Op>
inline T Apply2(T a, T b) {
  if constexpr (Op == OpK::kAdd) return a + b;
  else if constexpr (Op == OpK::kSub) return a - b;
  else if constexpr (Op == OpK::kMul) return a * b;
  else return a / b;
}

template <typename T, OpK Op>
inline T Apply1(T a) {
  if constexpr (Op == OpK::kNeg) return -a;
  else return a * a;  // square
}

/// Per-step operand pointers/values, loaded once before the loop (the same
/// hoist the hand-written kernels in kernels.h do by declaration order).
template <typename T>
struct Bound {
  const T* a = nullptr;  // column operand (left / only)
  const T* b = nullptr;  // column operand (right of a CC step)
  T v{};                 // value operand
};

template <typename T, typename S>
inline Bound<T> BindStep(const void* const* args, int* k) {
  Bound<T> bnd;
  constexpr Shape sh = S::kShape;
  if constexpr (sh == Shape::kCC) {
    bnd.a = static_cast<const T*>(args[(*k)++]);
    bnd.b = static_cast<const T*>(args[(*k)++]);
  } else if constexpr (sh == Shape::kCV) {
    bnd.a = static_cast<const T*>(args[(*k)++]);
    bnd.v = *static_cast<const T*>(args[(*k)++]);
  } else if constexpr (sh == Shape::kVC) {
    bnd.v = *static_cast<const T*>(args[(*k)++]);
    bnd.b = static_cast<const T*>(args[(*k)++]);
  } else if constexpr (sh == Shape::kC || sh == Shape::kPC ||
                       sh == Shape::kCP) {
    bnd.a = static_cast<const T*>(args[(*k)++]);
  } else if constexpr (sh == Shape::kPV || sh == Shape::kVP) {
    bnd.v = *static_cast<const T*>(args[(*k)++]);
  }
  // Shape::kP consumes no slot.
  return bnd;
}

template <typename T, typename S>
inline T EvalStep(const Bound<T>& bnd, int i, [[maybe_unused]] T prev) {
  constexpr Shape sh = S::kShape;
  if constexpr (sh == Shape::kCC) return Apply2<T, S::kOp>(bnd.a[i], bnd.b[i]);
  else if constexpr (sh == Shape::kCV) return Apply2<T, S::kOp>(bnd.a[i], bnd.v);
  else if constexpr (sh == Shape::kVC) return Apply2<T, S::kOp>(bnd.v, bnd.b[i]);
  else if constexpr (sh == Shape::kC)  return Apply1<T, S::kOp>(bnd.a[i]);
  else if constexpr (sh == Shape::kPC) return Apply2<T, S::kOp>(prev, bnd.a[i]);
  else if constexpr (sh == Shape::kPV) return Apply2<T, S::kOp>(prev, bnd.v);
  else if constexpr (sh == Shape::kCP) return Apply2<T, S::kOp>(bnd.a[i], prev);
  else if constexpr (sh == Shape::kVP) return Apply2<T, S::kOp>(bnd.v, prev);
  else return Apply1<T, S::kOp>(prev);  // kP
}

template <typename T, typename... Ss, size_t... I>
inline T EvalChain(const Bound<T>* bs, int i, std::index_sequence<I...>) {
  T acc{};
  ((acc = EvalStep<T, Ss>(bs[I], i, acc)), ...);
  return acc;
}

/// The generated kernel. Same contract as every map primitive: writes at
/// the selected positions only. Only the result pointer needs __restrict__
/// for the no-sel loop to vectorize — loads can then never be clobbered by
/// the stores.
template <typename T, typename... Ss>
void FusedMap(int n, void* res, const void* const* args, const int* sel) {
  T* __restrict__ r = static_cast<T*>(res);
  Bound<T> bs[sizeof...(Ss)];
  {
    int idx = 0, k = 0;
    ((bs[idx++] = BindStep<T, Ss>(args, &k)), ...);
  }
  constexpr auto kIdx = std::index_sequence_for<Ss...>{};
  if (sel) {
    for (int j = 0; j < n; j++) {
      int i = sel[j];
      r[i] = EvalChain<T, Ss...>(bs, i, kIdx);
    }
  } else {
    for (int i = 0; i < n; i++) r[i] = EvalChain<T, Ss...>(bs, i, kIdx);
  }
}

// ---- enumeration machinery --------------------------------------------------

template <typename... Ts>
struct L {};

template <typename T>
struct Tag {
  using type = T;
};

template <typename... Ts, typename F>
inline void ForEach(L<Ts...>, F&& f) {
  (f(Tag<Ts>{}), ...);
}

template <typename... Ls>
struct Cat;
template <typename L1>
struct Cat<L1> {
  using type = L1;
};
template <typename... As, typename... Bs, typename... Rest>
struct Cat<L<As...>, L<Bs...>, Rest...> {
  using type = typename Cat<L<As..., Bs...>, Rest...>::type;
};
template <typename... Ls>
using CatT = typename Cat<Ls...>::type;

template <typename T>
struct TypeOf;
template <>
struct TypeOf<double> {
  static constexpr TypeId kId = TypeId::kF64;
};
template <>
struct TypeOf<int64_t> {
  static constexpr TypeId kId = TypeId::kI64;
};

template <typename T, typename... Ss>
void Reg1(PrimitiveRegistry* r) {
  std::vector<fused::StepSig> sig{{Ss::kOp, Ss::kShape}...};
  r->RegisterMap(fused::KernelName(TypeOf<T>::kId, sig), TypeOf<T>::kId,
                 (0 + ... + fused::Slots(Ss::kShape)), &FusedMap<T, Ss...>);
}

template <typename T, typename L0, typename L1>
void Gen2(PrimitiveRegistry* r) {
  ForEach(L0{}, [r](auto t0) {
    using S0 = typename decltype(t0)::type;
    ForEach(L1{}, [r](auto t1) {
      using S1 = typename decltype(t1)::type;
      Reg1<T, S0, S1>(r);
    });
  });
}

template <typename T, typename L0, typename L1, typename L2>
void Gen3(PrimitiveRegistry* r) {
  ForEach(L0{}, [r](auto t0) {
    using S0 = typename decltype(t0)::type;
    ForEach(L1{}, [r](auto t1) {
      using S1 = typename decltype(t1)::type;
      ForEach(L2{}, [r](auto t2) {
        using S2 = typename decltype(t2)::type;
        Reg1<T, S0, S1, S2>(r);
      });
    });
  });
}

template <typename T, typename L0, typename L1, typename L2, typename L3>
void Gen4(PrimitiveRegistry* r) {
  ForEach(L0{}, [r](auto t0) {
    using S0 = typename decltype(t0)::type;
    ForEach(L1{}, [r](auto t1) {
      using S1 = typename decltype(t1)::type;
      ForEach(L2{}, [r](auto t2) {
        using S2 = typename decltype(t2)::type;
        ForEach(L3{}, [r](auto t3) {
          using S3 = typename decltype(t3)::type;
          Reg1<T, S0, S1, S2, S3>(r);
        });
      });
    });
  });
}

// ---- shared step lists ------------------------------------------------------

/// Binary op in the three first-step shapes.
template <OpK O>
using Bin3 = L<St<O, Shape::kCC>, St<O, Shape::kCV>, St<O, Shape::kVC>>;
/// Binary op in all four extension shapes.
template <OpK O>
using Ext4 = L<St<O, Shape::kPC>, St<O, Shape::kPV>, St<O, Shape::kCP>,
               St<O, Shape::kVP>>;
/// Binary op in the two prev-first extension shapes (the common direction).
template <OpK O>
using Ext2 = L<St<O, Shape::kPC>, St<O, Shape::kPV>>;

/// All f64 first steps: four binary ops × three shapes, plus unary neg /
/// square over a column.
using FirstF64 = CatT<Bin3<OpK::kAdd>, Bin3<OpK::kSub>, Bin3<OpK::kMul>,
                      Bin3<OpK::kDiv>,
                      L<St<OpK::kNeg, Shape::kC>, St<OpK::kSquare, Shape::kC>>>;
/// All f64 extension steps.
using ExtFullF64 = CatT<Ext4<OpK::kAdd>, Ext4<OpK::kSub>, Ext4<OpK::kMul>,
                        Ext4<OpK::kDiv>,
                        L<St<OpK::kNeg, Shape::kP>, St<OpK::kSquare, Shape::kP>>>;

// Per-depth enumeration entry points; each lives in its own TU. Together
// they are hooked into PrimitiveRegistry::Get() via
// RegisterFusedChainPrimitives (primitive.h).
void RegisterFusedD2(PrimitiveRegistry* r);  // f64 + i64 depth-2 chains
void RegisterFusedD3(PrimitiveRegistry* r);  // f64 depth-3 chains
void RegisterFusedD4(PrimitiveRegistry* r);  // f64 depth-4 chains

}  // namespace x100::fused_gen

#endif  // X100_PRIMITIVES_FUSED_GEN_H_
