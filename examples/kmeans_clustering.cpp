// Data mining on the query engine — the paper's §4 goal of extending X100
// "to other application domains like data mining" with the same vectorized
// efficiency. One k-means iteration is nothing but relational algebra:
//
//   assign:  CartProd(points, centroids) -> distance Project ->
//            per-point min-distance (HashAggr) -> join back = assignment
//   update:  HashAggr(points by cluster) -> mean Project = new centroids
//
// Every arithmetic step runs through the vectorized map primitives.
//
//   $ ./build/examples/kmeans_clustering

#include <cstdio>

#include "common/rng.h"
#include "exec/plan.h"
#include "storage/catalog.h"
#include "storage/print.h"

using namespace x100;
using namespace x100::exprs;

namespace {

template <typename... Ts>
std::vector<NamedExpr> NE(Ts&&... ts) {
  std::vector<NamedExpr> v;
  (v.push_back(std::move(ts)), ...);
  return v;
}
template <typename... Ts>
std::vector<AggrSpec> AG(Ts&&... ts) {
  std::vector<AggrSpec> v;
  (v.push_back(std::move(ts)), ...);
  return v;
}

/// One Lloyd iteration: returns the new centroid table and prints inertia.
std::unique_ptr<Table> Iterate(ExecContext* ctx, const Table& points,
                               const Table& centroids) {
  // distance(point, centroid) for every pair.
  auto pairs =
      plan::CartProd(ctx, plan::Scan(ctx, points, {"pid", "x", "y"}),
                     plan::Scan(ctx, centroids, {"cid", "cx", "cy"}),
                     {"pid", "x", "y"}, {"cid", "cx", "cy"});
  pairs = plan::Project(
      ctx, std::move(pairs),
      NE(Pass("pid"), Pass("cid"), Pass("x"), Pass("y"),
         As("d", Add(Square(Sub(Col("x"), Col("cx"))),
                     Square(Sub(Col("y"), Col("cy")))))));
  std::unique_ptr<Table> dist = RunPlan(std::move(pairs), "dist");

  // Nearest centroid per point: min distance, then join back on (pid, d).
  auto best = plan::HashAggr(ctx, plan::Scan(ctx, *dist, {"pid", "d"}),
                             {"pid"}, AG(Min("dmin", Col("d"))));
  auto assign =
      plan::Join(ctx, plan::Scan(ctx, *dist, {"pid", "cid", "x", "y", "d"}),
                 std::move(best),
                 {.probe_keys = {"pid", "d"},
                  .build_keys = {"pid", "dmin"},
                  .probe_out = {"pid", "cid", "x", "y", "d"}});
  // Ties (equidistant centroids) would duplicate a point; keep the first.
  auto dedup = plan::HashAggr(ctx, std::move(assign), {"pid"},
                              AG(Min("cid", Col("cid")), Min("x", Col("x")),
                                 Min("y", Col("y")), Min("d", Col("d"))));
  std::unique_ptr<Table> assigned = RunPlan(std::move(dedup), "assigned");

  // New centroids = per-cluster means; inertia = sum of distances.
  auto upd = plan::HashAggr(
      ctx, plan::Scan(ctx, *assigned, {"cid", "x", "y", "d"}), {"cid"},
      AG(Sum("sx", Col("x")), Sum("sy", Col("y")), CountAll("n"),
         Sum("inertia", Col("d"))));
  upd = plan::Project(
      ctx, std::move(upd),
      NE(Pass("cid"), As("cx", Div(Col("sx"), Call1("dbl", Col("n")))),
         As("cy", Div(Col("sy"), Call1("dbl", Col("n")))), Pass("n"),
         Pass("inertia")));
  upd = plan::Order(ctx, std::move(upd), {Asc("cid")});
  std::unique_ptr<Table> next = RunPlan(std::move(upd), "centroids");

  double inertia = 0;
  for (int64_t r = 0; r < next->num_rows(); r++) {
    inertia += next->GetValue(r, 4).AsF64();
  }
  std::printf("  inertia = %.1f\n", inertia);
  return next;
}

}  // namespace

int main() {
  // Three gaussian-ish blobs of points.
  Catalog catalog;
  Table* points = catalog.AddTable("points", {{"pid", TypeId::kI32, false},
                                              {"x", TypeId::kF64, false},
                                              {"y", TypeId::kF64, false}});
  Rng rng(99);
  const double blobs[3][2] = {{0, 0}, {10, 2}, {5, 9}};
  for (int i = 0; i < 30000; i++) {
    const double* b = blobs[i % 3];
    double jx = (rng.NextDouble() + rng.NextDouble() - 1.0) * 2.0;
    double jy = (rng.NextDouble() + rng.NextDouble() - 1.0) * 2.0;
    points->AppendRow(
        {Value::I32(i), Value::F64(b[0] + jx), Value::F64(b[1] + jy)});
  }
  points->Freeze();

  // Rough initial centroids (k-means drops a cluster if a centroid starts
  // so far out that it captures no points).
  auto centroids = std::make_unique<Table>(
      "centroids", std::vector<Table::ColumnSpec>{{"cid", TypeId::kI32, false},
                                                  {"cx", TypeId::kF64, false},
                                                  {"cy", TypeId::kF64, false}});
  centroids->AppendRow({Value::I32(0), Value::F64(1), Value::F64(-1)});
  centroids->AppendRow({Value::I32(1), Value::F64(8), Value::F64(1)});
  centroids->AppendRow({Value::I32(2), Value::F64(4), Value::F64(6)});
  centroids->Freeze();

  ExecContext ctx;
  std::printf("k-means on %lld points, k=3, 6 iterations:\n",
              static_cast<long long>(points->num_rows()));
  std::unique_ptr<Table> current = std::move(centroids);
  for (int it = 0; it < 6; it++) {
    std::printf("iteration %d:\n", it + 1);
    std::unique_ptr<Table> next = Iterate(&ctx, *points, *current);
    // Re-shape to the (cid, cx, cy) input schema for the next round.
    ExecContext c2;
    auto proj = plan::Project(
        &c2, plan::Scan(&c2, *next, {"cid", "cx", "cy"}),
        NE(Pass("cid"), Pass("cx"), Pass("cy")));
    current = RunPlan(std::move(proj), "centroids");
  }
  std::printf("\nfinal centroids (true blob centers: (0,0) (10,2) (5,9)):\n%s",
              FormatTable(*current).c_str());
  return 0;
}
