// The paper's extensibility story (§4.2): X100 treats user-provided code
// patterns as first-class primitives. The example is the one the paper uses —
// the Mahalanobis distance /(square(-(double*,double*)),double*) from
// multimedia retrieval — executed two ways:
//   1. as a chain of single-function vectorized primitives (sub, square, div)
//   2. as one compound primitive (the whole sub-tree in one loop)
// and reports the speedup of the compound form (the paper sees ~2x).
//
//   $ ./build/examples/multimedia_distance

#include <cstdio>

#include "common/profiling.h"
#include "exec/plan.h"
#include "storage/catalog.h"

using namespace x100;
using namespace x100::exprs;

namespace {

double RunVariant(ExecContext* ctx, const Table& t, bool compound) {
  ExprPtr dist;
  if (compound) {
    std::vector<ExprPtr> args;
    args.push_back(Col("x"));
    args.push_back(Col("mu"));
    args.push_back(Col("sigma"));
    dist = Expr::Call("mahalanobis", std::move(args));
  } else {
    dist = Div(Square(Sub(Col("x"), Col("mu"))), Col("sigma"));
  }
  auto plan = plan::Scan(ctx, t, {"x", "mu", "sigma"});
  std::vector<NamedExpr> exprs;
  exprs.push_back(As("d", std::move(dist)));
  plan = plan::Project(ctx, std::move(plan), std::move(exprs));
  std::vector<AggrSpec> aggrs;
  aggrs.push_back(Sum("total", Col("d")));
  plan = plan::HashAggr(ctx, std::move(plan), {}, std::move(aggrs));

  uint64_t t0 = NowNanos();
  std::unique_ptr<Table> r = RunPlan(std::move(plan), "dist");
  double ms = (NowNanos() - t0) / 1e6;
  std::printf("  %-22s %8.2f ms   (checksum %.3f)\n",
              compound ? "compound primitive" : "single primitives", ms,
              r->GetValue(0, 0).AsF64());
  return ms;
}

}  // namespace

int main() {
  Catalog catalog;
  Table* vecs = catalog.AddTable("features", {{"x", TypeId::kF64, false},
                                              {"mu", TypeId::kF64, false},
                                              {"sigma", TypeId::kF64, false}});
  for (int i = 0; i < 4000000; i++) {
    vecs->AppendRow({Value::F64(i % 251), Value::F64(i % 97),
                     Value::F64(1.0 + i % 13)});
  }
  vecs->Freeze();

  ExecContext ctx;
  std::printf("Mahalanobis distance over %lld tuples:\n",
              static_cast<long long>(vecs->num_rows()));
  RunVariant(&ctx, *vecs, false);  // warm-up + chained
  double chained = RunVariant(&ctx, *vecs, false);
  double compound = RunVariant(&ctx, *vecs, true);
  std::printf("compound speedup: %.2fx\n", chained / compound);
  return 0;
}
