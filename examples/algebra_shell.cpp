// Interactive X100 algebra shell over a TPC-H database: type plans in the
// paper's algebra notation (Figures 6/9) and run them — the Figure 5 parser
// path end to end. Plans may span lines; finish with an empty line. Try the
// paper's own example:
//
//   Aggr(
//     Project(
//       Select(
//         Table(lineitem),
//         < (l_shipdate, date('1998-09-03'))),
//       [ l_returnflag,
//         discountprice = *( -( flt('1.0'), l_discount), l_extendedprice) ]),
//     [ l_returnflag ],
//     [ sum_disc_price = sum(discountprice) ])
//
//   $ ./build/examples/algebra_shell [sf=0.01]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/profiling.h"
#include "exec/algebra_parser.h"
#include "exec/materialize.h"
#include "storage/print.h"
#include "tpch/dbgen.h"

using namespace x100;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::printf("generating TPC-H SF=%.4g ...\n", sf);
  DbgenOptions opts;
  opts.scale_factor = sf;
  std::unique_ptr<Catalog> db = GenerateTpch(opts);
  for (const std::string& t : db->TableNames()) {
    std::printf("  %-10s %8lld rows\n", t.c_str(),
                static_cast<long long>(db->Get(t).num_rows()));
  }
  std::printf("\nX100 algebra shell — enter a plan, finish with an empty "
              "line; 'quit' exits.\n\n");

  std::string plan_text;
  std::string line;
  while (true) {
    std::printf(plan_text.empty() ? "x100> " : "....> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) {
      plan_text += line;
      plan_text += '\n';
      continue;
    }
    if (plan_text.empty()) continue;

    ExecContext ctx;
    AlgebraParser parser(&ctx, *db);
    std::string error;
    std::unique_ptr<Operator> op = parser.Parse(plan_text, &error);
    plan_text.clear();
    if (op == nullptr) {
      std::printf("parse error: %s\n\n", error.c_str());
      continue;
    }
    uint64_t t0 = NowNanos();
    std::unique_ptr<Table> result = RunPlan(std::move(op), "result");
    double ms = (NowNanos() - t0) / 1e6;
    std::printf("%s(%lld rows, %.1f ms)\n\n",
                FormatTable(*result, 40).c_str(),
                static_cast<long long>(result->num_rows()), ms);
  }
  return 0;
}
