// Demonstrates the §4.3 storage design: immutable vertical fragments with
// delta-based updates (deletion list + uncompressed-code insert deltas),
// summary indices for range pruning on clustered columns, and enumeration
// compression with automatic decode — all visible through ordinary queries.
//
//   $ ./build/examples/updates_and_indices

#include <cstdio>

#include "common/date.h"
#include "exec/plan.h"
#include "storage/catalog.h"

using namespace x100;
using namespace x100::exprs;

namespace {

double TotalAmount(ExecContext* ctx, const Table& t, const char* lo,
                   const char* hi) {
  auto plan = plan::Scan(
      ctx, t,
      {.cols = {"day", "amount"},
       .range = ScanSpec::Range{"day", double(ParseDate(lo)),
                                double(ParseDate(hi))}});
  plan = plan::Select(ctx, std::move(plan),
                      And(Ge(Col("day"), LitDate(lo)),
                          Le(Col("day"), LitDate(hi))));
  std::vector<AggrSpec> aggrs;
  aggrs.push_back(Sum("total", Col("amount")));
  aggrs.push_back(CountAll("n"));
  plan = plan::HashAggr(ctx, std::move(plan), {}, std::move(aggrs));
  std::unique_ptr<Table> r = RunPlan(std::move(plan), "total");
  std::printf("  [%s .. %s]  total=%.2f over %lld rows\n", lo, hi,
              r->GetValue(0, 0).AsF64(),
              static_cast<long long>(r->GetValue(0, 1).AsI64()));
  return r->GetValue(0, 0).AsF64();
}

}  // namespace

int main() {
  Catalog catalog;
  // An event log clustered on date, with an enum-compressed category.
  Table* events = catalog.AddTable(
      "events", {{"day", TypeId::kDate, false},
                 {"category", TypeId::kStr, /*enum_encoded=*/true},
                 {"amount", TypeId::kF64, false}});
  const char* cats[3] = {"ads", "sales", "support"};
  int32_t day0 = ParseDate("2004-01-01");
  for (int i = 0; i < 300000; i++) {
    events->AppendRow({Value::Date(day0 + i / 1000),  // clustered: ~1000/day
                       Value::Str(cats[i % 3]), Value::F64(1.0 + i % 7)});
  }
  events->Freeze();
  events->BuildSummaryIndex("day");

  ExecContext ctx;
  std::printf("after bulk load (%lld rows):\n",
              static_cast<long long>(events->num_rows()));
  double before = TotalAmount(&ctx, *events, "2004-02-01", "2004-02-07");

  // Updates go to delta structures; the fragments stay immutable (Figure 8).
  std::printf("\ndeleting rows 0..999, inserting 500 new February rows...\n");
  for (int64_t r = 0; r < 1000; r++) X100_CHECK_OK(events->Delete(r));
  for (int i = 0; i < 500; i++) {
    events->Insert({Value::Date(ParseDate("2004-02-03")), Value::Str("sales"),
                    Value::F64(100.0)});
  }
  std::printf("fragment rows: %lld, delta rows: %lld, deleted: %lld\n",
              static_cast<long long>(events->fragment_rows()),
              static_cast<long long>(events->delta_rows()),
              static_cast<long long>(events->num_deleted()));
  double after = TotalAmount(&ctx, *events, "2004-02-01", "2004-02-07");
  std::printf("  delta visible through scans: +%.2f\n", after - before);

  // An Update is delete + re-insert.
  X100_CHECK_OK(events->Update(5000, "amount", Value::F64(9999.0)));
  TotalAmount(&ctx, *events, "2004-01-01", "2004-12-31");

  // Reorganize folds deltas back into fresh immutable fragments and rebuilds
  // the summary index.
  std::printf("\nreorganizing...\n");
  events->Reorganize();
  std::printf("fragment rows: %lld, delta rows: %lld, deleted: %lld\n",
              static_cast<long long>(events->fragment_rows()),
              static_cast<long long>(events->delta_rows()),
              static_cast<long long>(events->num_deleted()));
  TotalAmount(&ctx, *events, "2004-01-01", "2004-12-31");
  return 0;
}
