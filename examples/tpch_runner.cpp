// Run any TPC-H query on either engine and print the result — the repository
// as a command-line analytical database.
//
//   $ ./build/examples/tpch_runner <query 1-22> [sf=0.05] [x100|mil|both]
//   $ ./build/examples/tpch_runner 5 0.1 both
//   $ ./build/examples/tpch_runner --explain-analyze 1
//   $ ./build/examples/tpch_runner --sessions 8 6
//   $ ./build/examples/tpch_runner --metrics-out metrics.json 1
//
// --explain-analyze (or env X100_TRACE=1) prints the executed X100 plan
// annotated with per-node Next() calls, batches, tuples, cycles and — when
// the machine grants perf_event access — per-operator IPC and LLC
// misses/tuple (absent, not zero, otherwise).
// --sessions N additionally runs the query N times concurrently through the
// QueryService (server/query_service.h) and reports per-session latency —
// the serving path over one shared engine.
// --metrics-out <path> (or env X100_METRICS_OUT) dumps the full metrics
// registry snapshot as JSON at exit, so any run can be scraped without a
// bench harness.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "common/perf_counters.h"
#include "common/profiling.h"
#include "common/thread_pool.h"
#include "exec/trace.h"
#include "server/engine_cache.h"
#include "server/query_service.h"
#include "storage/print.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace x100;

int main(int argc, char** argv) {
  bool explain = false;
  if (const char* env = std::getenv("X100_TRACE")) {
    explain = *env != '\0' && std::strcmp(env, "0") != 0;
  }
  // env X100_METRICS_OUT; --metrics-out overrides.
  std::string metrics_out = EnvString("X100_METRICS_OUT", "");
  const char* pos[3] = {nullptr, nullptr, nullptr};
  const char* sessions_arg = nullptr;
  int npos = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (npos < 3) {
      pos[npos++] = argv[i];
    }
  }
  auto usage = [&](const char* why, const char* got) {
    std::fprintf(stderr, "%s: %s%s%s\n", argv[0], why, got ? ": " : "",
                 got ? got : "");
    std::fprintf(stderr,
                 "usage: %s [--explain-analyze] [--sessions N] "
                 "[--metrics-out <path>] "
                 "<query 1-22> [sf=0.05] [engine=x100|mil|both]\n",
                 argv[0]);
    return 2;
  };
  if (npos < 1) return usage("missing query number", nullptr);
  char* end = nullptr;
  int sessions = 1;
  if (sessions_arg != nullptr) {
    long sl = std::strtol(sessions_arg, &end, 10);
    if (end == sessions_arg || *end != '\0' || sl < 1 || sl > 256) {
      return usage("--sessions must be 1..256", sessions_arg);
    }
    sessions = static_cast<int>(sl);
  }
  long ql = std::strtol(pos[0], &end, 10);
  if (end == pos[0] || *end != '\0') {
    return usage("query is not a number", pos[0]);
  }
  if (ql < 1 || ql > kNumTpchQueries) {
    return usage("query must be 1..22", pos[0]);
  }
  int q = static_cast<int>(ql);
  double sf = 0.05;
  if (npos > 1) {
    sf = std::strtod(pos[1], &end);
    if (end == pos[1] || *end != '\0' || !(sf > 0.0)) {
      return usage("sf must be a positive number", pos[1]);
    }
  }
  const char* engine = npos > 2 ? pos[2] : "x100";
  if (std::strcmp(engine, "x100") != 0 && std::strcmp(engine, "mil") != 0 &&
      std::strcmp(engine, "both") != 0) {
    return usage("engine must be x100, mil or both", engine);
  }

  std::printf("generating TPC-H SF=%.4g ...\n", sf);
  DbgenOptions opts;
  opts.scale_factor = sf;
  std::unique_ptr<Catalog> db = GenerateTpch(opts);

  if (std::strcmp(engine, "x100") == 0 || std::strcmp(engine, "both") == 0) {
    // Hardware counters for the traced run (absent on perf-less machines;
    // the trace then simply has no IPC/cache columns).
    ScopedPerfThread perf_thread(explain);
    QueryTrace trace;
    ExecContext ctx;
    ctx.num_threads = EnvParallelism();  // X100_THREADS
    if (explain) ctx.trace = &trace;
    uint64_t t0 = NowNanos();
    std::unique_ptr<Table> r = RunX100Query(q, &ctx, *db);
    double ms = (NowNanos() - t0) / 1e6;
    std::printf("\n=== Q%d on MonetDB/X100: %.1f ms, %lld rows ===\n%s", q, ms,
                static_cast<long long>(r->num_rows()),
                FormatTable(*r, 30).c_str());
    if (explain) {
      std::printf("\n=== EXPLAIN ANALYZE (Q%d) ===\n%s", q,
                  trace.ToString().c_str());
    }

    if (sessions > 1) {
      // The serving path: N concurrent sessions over the one shared catalog,
      // admission-controlled, each with its own cancellation token. Queries
      // go in as QueryRequests — the same schema a network client sends —
      // against the service's engine cache, seeded with the already
      // generated catalog. The serial run above is the latency reference.
      long long serial_rows = static_cast<long long>(r->num_rows());
      QueryService svc({/*max_concurrent=*/sessions, /*max_worker_threads=*/0});
      svc.engines()->Seed(sf, db.get());
      std::vector<std::shared_ptr<QuerySession>> live;
      uint64_t c0 = NowNanos();
      for (int i = 0; i < sessions; i++) {
        QueryRequest req;
        req.query = "q" + std::to_string(q);
        req.scale_factor = sf;
        req.num_threads = EnvParallelism();
        req.collect_trace = explain;
        req.label = "q" + std::to_string(q) + "#" + std::to_string(i);
        live.push_back(svc.Submit(req));
      }
      int mismatches = 0;
      for (auto& s : live) {
        s->Wait();
        std::unique_ptr<Table> res = s->TakeResult();
        if (res == nullptr || static_cast<long long>(res->num_rows()) !=
                                  serial_rows) {
          mismatches++;
        }
      }
      double wall_ms = (NowNanos() - c0) / 1e6;
      std::printf("\n=== Q%d x %d concurrent sessions: %.1f ms wall ===\n", q,
                  sessions, wall_ms);
      for (auto& s : live) {
        std::printf("  %-8s queue %7.2f ms  exec %8.2f ms",
                    s->label().c_str(), s->queue_nanos() / 1e6,
                    s->exec_nanos() / 1e6);
        // Driver-thread hardware counters; omitted when unavailable.
        if (s->perf().HasIpc()) {
          std::printf("  ipc %5.2f", s->perf().Ipc());
        }
        if (s->perf().Has(PerfEvent::kCacheMisses)) {
          std::printf("  llc-miss %9llu",
                      static_cast<unsigned long long>(
                          s->perf().Get(PerfEvent::kCacheMisses)));
        }
        std::printf("\n");
      }
      if (mismatches > 0) {
        std::fprintf(stderr, "error: %d session(s) disagreed with the serial "
                             "result\n", mismatches);
        return 1;
      }
      std::printf("  all %d sessions matched the serial row count\n",
                  sessions);
    }
  }
  if (std::strcmp(engine, "mil") == 0 || std::strcmp(engine, "both") == 0) {
    MilDatabase mil(*db);
    MilSession warm;
    RunMilQuery(q, &warm, &mil);  // materialize BATs outside the timing
    MilSession s;
    uint64_t t0 = NowNanos();
    std::unique_ptr<Table> r = RunMilQuery(q, &s, &mil);
    double ms = (NowNanos() - t0) / 1e6;
    std::printf("\n=== Q%d on MonetDB/MIL: %.1f ms, %lld rows ===\n%s", q, ms,
                static_cast<long long>(r->num_rows()),
                FormatTable(*r, 30).c_str());
  }
  if (!metrics_out.empty()) {
    std::string json = MetricsRegistry::Get().ToJson();
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "[metrics] wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
