// x100_server: the network front-end as a standalone binary.
//
//   $ ./build/examples/x100_server                      # X100_PORT or 4100
//   $ ./build/examples/x100_server --port 0 --port-file /tmp/port.txt
//   $ ./build/examples/x100_server --preload 0.01 --max-concurrent 8
//
// Serves the wire protocol (src/server/wire.h) until SIGINT/SIGTERM.
// --port-file writes the actually-bound port (after --port 0 picked an
// ephemeral one) so harnesses can connect without racing the log output.
// --preload SF dbgens an engine up front instead of on the first request.
// Connection limits and outbox budget come from X100_MAX_CONNS and
// X100_OUTBOX_BYTES (common/config.h).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/config.h"
#include "server/engine_cache.h"
#include "server/query_service.h"
#include "server/tcp_server.h"

using namespace x100;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  int port = -1;  // env default
  std::string port_file;
  double preload_sf = 0.0;
  int max_concurrent = 8;
  auto usage = [&](const char* why) {
    std::fprintf(stderr, "%s: %s\n", argv[0], why);
    std::fprintf(stderr,
                 "usage: %s [--port N] [--port-file PATH] [--preload SF] "
                 "[--max-concurrent N]\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; i++) {
    char* end = nullptr;
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      long p = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || p < 0 || p > 65535) {
        return usage("--port must be 0..65535");
      }
      port = static_cast<int>(p);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      preload_sf = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(preload_sf > 0.0)) {
        return usage("--preload must be a positive scale factor");
      }
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 &&
               i + 1 < argc) {
      long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 256) {
        return usage("--max-concurrent must be 1..256");
      }
      max_concurrent = static_cast<int>(n);
    } else {
      return usage("unknown argument");
    }
  }

  QueryService svc(
      {/*max_concurrent=*/max_concurrent, /*max_worker_threads=*/0});
  if (preload_sf > 0.0) {
    std::printf("preloading TPC-H SF=%.4g ...\n", preload_sf);
    svc.engines()->Get(preload_sf, /*want_disk=*/false);
  }

  TcpServer server(&svc, {port, /*max_connections=*/-1, /*outbox_bytes=*/0});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "fatal: %s\n", error.c_str());
    return 1;
  }
  std::printf("x100_server listening on port %d (max %d connections, "
              "%zu-byte outboxes)\n",
              server.port(), server.max_connections(), server.outbox_bytes());
  std::fflush(stdout);

  if (!port_file.empty()) {
    // Write then rename: a poller never reads a half-written file.
    std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fatal: cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::fprintf(stderr, "fatal: cannot rename %s\n", tmp.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    usleep(50 * 1000);
  }
  std::printf("shutting down\n");
  server.Stop();
  svc.Drain();
  return 0;
}
