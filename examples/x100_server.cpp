// x100_server: the network front-end as a standalone binary.
//
//   $ ./build/examples/x100_server                      # X100_PORT or 4100
//   $ ./build/examples/x100_server --port 0 --port-file /tmp/port.txt
//   $ ./build/examples/x100_server --preload 0.01 --max-concurrent 8
//   $ ./build/examples/x100_server --wal-dir /var/lib/x100   # durable
//
// Serves the wire protocol (src/server/wire.h) until SIGINT/SIGTERM.
// --port-file writes the actually-bound port (after --port 0 picked an
// ephemeral one) so harnesses can connect without racing the log output.
// --preload SF dbgens an engine up front instead of on the first request.
// --wal-dir (or X100_WAL_DIR) enables the durable write path: UPDATE
// frames are accepted, group-committed to a WAL under the directory, and
// replayed on the next start — kill -9 loses no acknowledged write.
// --metrics-out (or X100_METRICS_OUT) dumps the metrics registry as JSON
// to the given path on a clean signal-driven exit, so harnesses can
// collect server-side counters without holding a connection open.
// Connection limits and outbox budget come from X100_MAX_CONNS and
// X100_OUTBOX_BYTES (common/config.h).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/config.h"
#include "common/metrics.h"
#include "server/engine_cache.h"
#include "server/query_service.h"
#include "server/tcp_server.h"

using namespace x100;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// Write-then-rename so a poller never reads a half-written file.
bool WriteFileAtomic(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}
}  // namespace

int main(int argc, char** argv) {
  int port = -1;  // env default
  std::string port_file;
  double preload_sf = 0.0;
  int max_concurrent = 8;
  std::string wal_dir = EnvWalDir();
  std::string metrics_out = EnvMetricsOut();
  auto usage = [&](const char* why) {
    std::fprintf(stderr, "%s: %s\n", argv[0], why);
    std::fprintf(stderr,
                 "usage: %s [--port N] [--port-file PATH] [--preload SF] "
                 "[--max-concurrent N] [--wal-dir PATH] "
                 "[--metrics-out PATH]\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; i++) {
    char* end = nullptr;
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      long p = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || p < 0 || p > 65535) {
        return usage("--port must be 0..65535");
      }
      port = static_cast<int>(p);
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      preload_sf = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(preload_sf > 0.0)) {
        return usage("--preload must be a positive scale factor");
      }
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 &&
               i + 1 < argc) {
      long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 256) {
        return usage("--max-concurrent must be 1..256");
      }
      max_concurrent = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      return usage("unknown argument");
    }
  }

  QueryService::Options svc_opts;
  svc_opts.max_concurrent = max_concurrent;
  svc_opts.wal_dir = wal_dir;
  svc_opts.wal_group_us = EnvWalGroupUs();
  svc_opts.merge_threshold_rows = EnvMergeRows();
  QueryService svc(svc_opts);
  if (preload_sf > 0.0) {
    std::printf("preloading TPC-H SF=%.4g%s ...\n", preload_sf,
                wal_dir.empty() ? "" : " (durable)");
    std::fflush(stdout);
    svc.engines()->Get(preload_sf, /*want_disk=*/false);
  }

  TcpServer server(&svc, {port, /*max_connections=*/-1, /*outbox_bytes=*/0});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "fatal: %s\n", error.c_str());
    return 1;
  }
  std::printf("x100_server listening on port %d (max %d connections, "
              "%zu-byte outboxes%s)\n",
              server.port(), server.max_connections(), server.outbox_bytes(),
              wal_dir.empty() ? "" : (", wal " + wal_dir).c_str());
  std::fflush(stdout);

  if (!port_file.empty()) {
    if (!WriteFileAtomic(port_file, std::to_string(server.port()) + "\n")) {
      std::fprintf(stderr, "fatal: cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    usleep(50 * 1000);
  }
  std::printf("shutting down\n");
  server.Stop();
  svc.Drain();
  if (!metrics_out.empty()) {
    if (WriteFileAtomic(metrics_out, MetricsRegistry::Get().ToJson() + "\n")) {
      std::printf("metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
