// Quickstart: build a small table, run a vectorized select-project-aggregate
// pipeline through the public X100 API, and print the result.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "exec/plan.h"
#include "storage/catalog.h"

using namespace x100;
using namespace x100::exprs;

int main() {
  // 1. Create a table of orders: (city [enum-compressed], amount, discount).
  Catalog catalog;
  Table* sales = catalog.AddTable(
      "sales", {{"city", TypeId::kStr, /*enum_encoded=*/true},
                {"amount", TypeId::kF64, false},
                {"discount", TypeId::kF64, false}});
  const char* cities[4] = {"amsterdam", "berlin", "paris", "rome"};
  for (int i = 0; i < 100000; i++) {
    sales->AppendRow({Value::Str(cities[i % 4]),
                      Value::F64(10.0 + (i % 97)),
                      Value::F64((i % 10) / 100.0)});
  }
  sales->Freeze();

  // 2. Build an X100 algebra plan:
  //      Aggr(
  //        Project(
  //          Select(Scan(sales), amount > 50),
  //          [city, net = amount * (1 - discount)]),
  //        [city], [total = sum(net), n = count()])
  ExecContext ctx;  // vector size 1024, the paper's sweet spot
  auto plan = plan::Scan(&ctx, *sales, {"city", "amount", "discount"});
  plan = plan::Select(&ctx, std::move(plan), Gt(Col("amount"), LitF64(50.0)));
  plan = plan::Project(
      &ctx, std::move(plan),
      [] {
        std::vector<NamedExpr> e;
        e.push_back(Pass("city"));
        e.push_back(As("net", Mul(Col("amount"),
                                  Sub(LitF64(1.0), Col("discount")))));
        return e;
      }());
  {
    std::vector<AggrSpec> aggrs;
    aggrs.push_back(Sum("total", Col("net")));
    aggrs.push_back(CountAll("n"));
    plan = plan::HashAggr(&ctx, std::move(plan), {"city"}, std::move(aggrs));
  }
  plan = plan::Order(&ctx, std::move(plan), {Asc("city")});

  // 3. Run it and print.
  std::unique_ptr<Table> result = RunPlan(std::move(plan), "result");
  std::printf("%-12s %14s %8s\n", "city", "total", "n");
  for (int64_t r = 0; r < result->num_rows(); r++) {
    std::printf("%-12s %14.2f %8lld\n", result->GetValue(r, 0).AsStr().c_str(),
                result->GetValue(r, 1).AsF64(),
                static_cast<long long>(result->GetValue(r, 2).AsI64()));
  }
  return 0;
}
