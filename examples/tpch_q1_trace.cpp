// Runs TPC-H Query 1 on the X100 engine with per-primitive tracing enabled
// and prints the Table 5-style trace, plus the same query on MonetDB/MIL with
// its Table 3-style statement trace — the paper's two execution models side
// by side on the same data.
//
//   $ ./build/examples/tpch_q1_trace [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "common/profiling.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace x100;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("generating TPC-H SF=%.3f ...\n", sf);
  DbgenOptions opts;
  opts.scale_factor = sf;
  std::unique_ptr<Catalog> db = GenerateTpch(opts);

  // X100, vectorized, with the Table 5 trace.
  Profiler profiler;
  ExecContext ctx;
  ctx.profiler = &profiler;
  uint64_t t0 = NowNanos();
  std::unique_ptr<Table> result = RunX100Query(1, &ctx, *db);
  double x100_ms = (NowNanos() - t0) / 1e6;

  std::printf("\n--- X100 result (%lld groups) ---\n",
              static_cast<long long>(result->num_rows()));
  for (int64_t r = 0; r < result->num_rows(); r++) {
    std::printf("%c %c  qty=%.0f  price=%.2f  count=%lld\n",
                static_cast<char>(result->GetValue(r, 0).AsI64()),
                static_cast<char>(result->GetValue(r, 1).AsI64()),
                result->GetValue(r, 2).AsF64(), result->GetValue(r, 3).AsF64(),
                static_cast<long long>(result->GetValue(r, 9).AsI64()));
  }
  std::printf("\n--- X100 per-primitive trace (cf. paper Table 5) ---\n%s",
              profiler.ToString().c_str());
  std::printf("X100 total: %.1f ms\n", x100_ms);

  // MonetDB/MIL, column-at-a-time, with the Table 3 trace.
  MilDatabase mil(*db);
  mil.Warm("lineitem", {"l_shipdate", "l_returnflag", "l_linestatus",
                        "l_extendedprice", "l_discount", "l_tax", "l_quantity"});
  MilSession session;
  session.trace = true;
  RunMilQuery(1, &session, &mil);
  std::printf("\n--- MonetDB/MIL statement trace (cf. paper Table 3) ---\n%s",
              session.ToString().c_str());
  return 0;
}
