# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(algebra_parser_test "/root/repo/build/tests/algebra_parser_test")
set_tests_properties(algebra_parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dbgen_test "/root/repo/build/tests/dbgen_test")
set_tests_properties(dbgen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build/tests/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(golden_test "/root/repo/build/tests/golden_test")
set_tests_properties(golden_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mil_test "/root/repo/build/tests/mil_test")
set_tests_properties(mil_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(predicate_test "/root/repo/build/tests/predicate_test")
set_tests_properties(predicate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(primitives_test "/root/repo/build/tests/primitives_test")
set_tests_properties(primitives_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpch_queries_test "/root/repo/build/tests/tpch_queries_test")
set_tests_properties(tpch_queries_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tuple_engine_test "/root/repo/build/tests/tuple_engine_test")
set_tests_properties(tuple_engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;x100_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vector_test "/root/repo/build/tests/vector_test")
set_tests_properties(vector_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;x100_test;/root/repo/tests/CMakeLists.txt;0;")
