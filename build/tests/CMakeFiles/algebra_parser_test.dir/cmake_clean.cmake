file(REMOVE_RECURSE
  "CMakeFiles/algebra_parser_test.dir/algebra_parser_test.cc.o"
  "CMakeFiles/algebra_parser_test.dir/algebra_parser_test.cc.o.d"
  "algebra_parser_test"
  "algebra_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
