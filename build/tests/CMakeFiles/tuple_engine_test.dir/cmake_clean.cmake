file(REMOVE_RECURSE
  "CMakeFiles/tuple_engine_test.dir/tuple_engine_test.cc.o"
  "CMakeFiles/tuple_engine_test.dir/tuple_engine_test.cc.o.d"
  "tuple_engine_test"
  "tuple_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
