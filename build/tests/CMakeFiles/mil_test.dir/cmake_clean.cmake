file(REMOVE_RECURSE
  "CMakeFiles/mil_test.dir/mil_test.cc.o"
  "CMakeFiles/mil_test.dir/mil_test.cc.o.d"
  "mil_test"
  "mil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
