file(REMOVE_RECURSE
  "CMakeFiles/ablation_radix.dir/ablation_radix.cc.o"
  "CMakeFiles/ablation_radix.dir/ablation_radix.cc.o.d"
  "ablation_radix"
  "ablation_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
