# Empty dependencies file for ablation_compound.
# This may be replaced when dependencies are built.
