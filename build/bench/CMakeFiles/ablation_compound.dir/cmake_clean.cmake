file(REMOVE_RECURSE
  "CMakeFiles/ablation_compound.dir/ablation_compound.cc.o"
  "CMakeFiles/ablation_compound.dir/ablation_compound.cc.o.d"
  "ablation_compound"
  "ablation_compound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
