# Empty dependencies file for table5_x100_trace.
# This may be replaced when dependencies are built.
