file(REMOVE_RECURSE
  "CMakeFiles/table5_x100_trace.dir/table5_x100_trace.cc.o"
  "CMakeFiles/table5_x100_trace.dir/table5_x100_trace.cc.o.d"
  "table5_x100_trace"
  "table5_x100_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_x100_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
