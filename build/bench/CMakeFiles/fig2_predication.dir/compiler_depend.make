# Empty compiler generated dependencies file for fig2_predication.
# This may be replaced when dependencies are built.
