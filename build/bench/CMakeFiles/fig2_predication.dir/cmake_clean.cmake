file(REMOVE_RECURSE
  "CMakeFiles/fig2_predication.dir/fig2_predication.cc.o"
  "CMakeFiles/fig2_predication.dir/fig2_predication.cc.o.d"
  "fig2_predication"
  "fig2_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
