file(REMOVE_RECURSE
  "CMakeFiles/table4_tpch.dir/table4_tpch.cc.o"
  "CMakeFiles/table4_tpch.dir/table4_tpch.cc.o.d"
  "table4_tpch"
  "table4_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
