# Empty dependencies file for table4_tpch.
# This may be replaced when dependencies are built.
