# Empty compiler generated dependencies file for table2_tuple_profile.
# This may be replaced when dependencies are built.
