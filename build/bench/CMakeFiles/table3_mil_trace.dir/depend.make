# Empty dependencies file for table3_mil_trace.
# This may be replaced when dependencies are built.
