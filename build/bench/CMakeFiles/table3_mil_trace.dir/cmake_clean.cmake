file(REMOVE_RECURSE
  "CMakeFiles/table3_mil_trace.dir/table3_mil_trace.cc.o"
  "CMakeFiles/table3_mil_trace.dir/table3_mil_trace.cc.o.d"
  "table3_mil_trace"
  "table3_mil_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mil_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
