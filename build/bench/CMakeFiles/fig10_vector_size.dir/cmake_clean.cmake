file(REMOVE_RECURSE
  "CMakeFiles/fig10_vector_size.dir/fig10_vector_size.cc.o"
  "CMakeFiles/fig10_vector_size.dir/fig10_vector_size.cc.o.d"
  "fig10_vector_size"
  "fig10_vector_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vector_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
