file(REMOVE_RECURSE
  "CMakeFiles/multimedia_distance.dir/multimedia_distance.cpp.o"
  "CMakeFiles/multimedia_distance.dir/multimedia_distance.cpp.o.d"
  "multimedia_distance"
  "multimedia_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
