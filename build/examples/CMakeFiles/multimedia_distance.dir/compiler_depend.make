# Empty compiler generated dependencies file for multimedia_distance.
# This may be replaced when dependencies are built.
