file(REMOVE_RECURSE
  "CMakeFiles/tpch_runner.dir/tpch_runner.cpp.o"
  "CMakeFiles/tpch_runner.dir/tpch_runner.cpp.o.d"
  "tpch_runner"
  "tpch_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
