# Empty dependencies file for tpch_runner.
# This may be replaced when dependencies are built.
