
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/algebra_shell.cpp" "examples/CMakeFiles/algebra_shell.dir/algebra_shell.cpp.o" "gcc" "examples/CMakeFiles/algebra_shell.dir/algebra_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tpch/CMakeFiles/x100_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/x100_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mil/CMakeFiles/x100_mil.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/x100_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/x100_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/x100_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/x100_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/x100_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
