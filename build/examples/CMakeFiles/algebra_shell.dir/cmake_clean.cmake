file(REMOVE_RECURSE
  "CMakeFiles/algebra_shell.dir/algebra_shell.cpp.o"
  "CMakeFiles/algebra_shell.dir/algebra_shell.cpp.o.d"
  "algebra_shell"
  "algebra_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
