# Empty compiler generated dependencies file for algebra_shell.
# This may be replaced when dependencies are built.
