# Empty dependencies file for tpch_q1_trace.
# This may be replaced when dependencies are built.
