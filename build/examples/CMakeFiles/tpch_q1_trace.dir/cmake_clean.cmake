file(REMOVE_RECURSE
  "CMakeFiles/tpch_q1_trace.dir/tpch_q1_trace.cpp.o"
  "CMakeFiles/tpch_q1_trace.dir/tpch_q1_trace.cpp.o.d"
  "tpch_q1_trace"
  "tpch_q1_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_q1_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
