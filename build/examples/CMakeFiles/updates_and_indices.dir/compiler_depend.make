# Empty compiler generated dependencies file for updates_and_indices.
# This may be replaced when dependencies are built.
