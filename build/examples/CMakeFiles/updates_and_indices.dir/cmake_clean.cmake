file(REMOVE_RECURSE
  "CMakeFiles/updates_and_indices.dir/updates_and_indices.cpp.o"
  "CMakeFiles/updates_and_indices.dir/updates_and_indices.cpp.o.d"
  "updates_and_indices"
  "updates_and_indices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_and_indices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
