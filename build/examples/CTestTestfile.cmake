# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_updates_and_indices "/root/repo/build/examples/updates_and_indices")
set_tests_properties(example_updates_and_indices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpch_runner "/root/repo/build/examples/tpch_runner" "3" "0.005" "both")
set_tests_properties(example_tpch_runner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpch_q1_trace "/root/repo/build/examples/tpch_q1_trace" "0.005")
set_tests_properties(example_tpch_q1_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
