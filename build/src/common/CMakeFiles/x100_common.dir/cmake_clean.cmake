file(REMOVE_RECURSE
  "CMakeFiles/x100_common.dir/arena.cc.o"
  "CMakeFiles/x100_common.dir/arena.cc.o.d"
  "CMakeFiles/x100_common.dir/date.cc.o"
  "CMakeFiles/x100_common.dir/date.cc.o.d"
  "CMakeFiles/x100_common.dir/profiling.cc.o"
  "CMakeFiles/x100_common.dir/profiling.cc.o.d"
  "CMakeFiles/x100_common.dir/types.cc.o"
  "CMakeFiles/x100_common.dir/types.cc.o.d"
  "CMakeFiles/x100_common.dir/value.cc.o"
  "CMakeFiles/x100_common.dir/value.cc.o.d"
  "libx100_common.a"
  "libx100_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
