# Empty dependencies file for x100_common.
# This may be replaced when dependencies are built.
