file(REMOVE_RECURSE
  "libx100_common.a"
)
