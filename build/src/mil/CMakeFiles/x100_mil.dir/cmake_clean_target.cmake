file(REMOVE_RECURSE
  "libx100_mil.a"
)
