file(REMOVE_RECURSE
  "CMakeFiles/x100_mil.dir/mil_ops.cc.o"
  "CMakeFiles/x100_mil.dir/mil_ops.cc.o.d"
  "libx100_mil.a"
  "libx100_mil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_mil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
