# Empty compiler generated dependencies file for x100_mil.
# This may be replaced when dependencies are built.
