# Empty compiler generated dependencies file for x100_primitives.
# This may be replaced when dependencies are built.
