
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primitives/aggr.cc" "src/primitives/CMakeFiles/x100_primitives.dir/aggr.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/aggr.cc.o.d"
  "/root/repo/src/primitives/compound.cc" "src/primitives/CMakeFiles/x100_primitives.dir/compound.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/compound.cc.o.d"
  "/root/repo/src/primitives/fetch_hash.cc" "src/primitives/CMakeFiles/x100_primitives.dir/fetch_hash.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/fetch_hash.cc.o.d"
  "/root/repo/src/primitives/map_arith.cc" "src/primitives/CMakeFiles/x100_primitives.dir/map_arith.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/map_arith.cc.o.d"
  "/root/repo/src/primitives/map_cast.cc" "src/primitives/CMakeFiles/x100_primitives.dir/map_cast.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/map_cast.cc.o.d"
  "/root/repo/src/primitives/registry.cc" "src/primitives/CMakeFiles/x100_primitives.dir/registry.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/registry.cc.o.d"
  "/root/repo/src/primitives/select_cmp.cc" "src/primitives/CMakeFiles/x100_primitives.dir/select_cmp.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/select_cmp.cc.o.d"
  "/root/repo/src/primitives/string_prims.cc" "src/primitives/CMakeFiles/x100_primitives.dir/string_prims.cc.o" "gcc" "src/primitives/CMakeFiles/x100_primitives.dir/string_prims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/x100_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/x100_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
