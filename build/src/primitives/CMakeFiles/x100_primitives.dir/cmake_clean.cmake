file(REMOVE_RECURSE
  "CMakeFiles/x100_primitives.dir/aggr.cc.o"
  "CMakeFiles/x100_primitives.dir/aggr.cc.o.d"
  "CMakeFiles/x100_primitives.dir/compound.cc.o"
  "CMakeFiles/x100_primitives.dir/compound.cc.o.d"
  "CMakeFiles/x100_primitives.dir/fetch_hash.cc.o"
  "CMakeFiles/x100_primitives.dir/fetch_hash.cc.o.d"
  "CMakeFiles/x100_primitives.dir/map_arith.cc.o"
  "CMakeFiles/x100_primitives.dir/map_arith.cc.o.d"
  "CMakeFiles/x100_primitives.dir/map_cast.cc.o"
  "CMakeFiles/x100_primitives.dir/map_cast.cc.o.d"
  "CMakeFiles/x100_primitives.dir/registry.cc.o"
  "CMakeFiles/x100_primitives.dir/registry.cc.o.d"
  "CMakeFiles/x100_primitives.dir/select_cmp.cc.o"
  "CMakeFiles/x100_primitives.dir/select_cmp.cc.o.d"
  "CMakeFiles/x100_primitives.dir/string_prims.cc.o"
  "CMakeFiles/x100_primitives.dir/string_prims.cc.o.d"
  "libx100_primitives.a"
  "libx100_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
