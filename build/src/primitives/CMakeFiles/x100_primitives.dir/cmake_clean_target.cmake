file(REMOVE_RECURSE
  "libx100_primitives.a"
)
