
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/column.cc" "src/storage/CMakeFiles/x100_storage.dir/column.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/column.cc.o.d"
  "/root/repo/src/storage/columnbm.cc" "src/storage/CMakeFiles/x100_storage.dir/columnbm.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/columnbm.cc.o.d"
  "/root/repo/src/storage/compression.cc" "src/storage/CMakeFiles/x100_storage.dir/compression.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/compression.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/storage/CMakeFiles/x100_storage.dir/serialize.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/serialize.cc.o.d"
  "/root/repo/src/storage/summary_index.cc" "src/storage/CMakeFiles/x100_storage.dir/summary_index.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/summary_index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/x100_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/x100_storage.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/x100_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/x100_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
