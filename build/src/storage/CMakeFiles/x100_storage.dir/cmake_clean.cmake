file(REMOVE_RECURSE
  "CMakeFiles/x100_storage.dir/column.cc.o"
  "CMakeFiles/x100_storage.dir/column.cc.o.d"
  "CMakeFiles/x100_storage.dir/columnbm.cc.o"
  "CMakeFiles/x100_storage.dir/columnbm.cc.o.d"
  "CMakeFiles/x100_storage.dir/compression.cc.o"
  "CMakeFiles/x100_storage.dir/compression.cc.o.d"
  "CMakeFiles/x100_storage.dir/serialize.cc.o"
  "CMakeFiles/x100_storage.dir/serialize.cc.o.d"
  "CMakeFiles/x100_storage.dir/summary_index.cc.o"
  "CMakeFiles/x100_storage.dir/summary_index.cc.o.d"
  "CMakeFiles/x100_storage.dir/table.cc.o"
  "CMakeFiles/x100_storage.dir/table.cc.o.d"
  "libx100_storage.a"
  "libx100_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
