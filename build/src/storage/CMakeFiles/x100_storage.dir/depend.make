# Empty dependencies file for x100_storage.
# This may be replaced when dependencies are built.
