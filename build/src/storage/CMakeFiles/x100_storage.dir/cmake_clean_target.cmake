file(REMOVE_RECURSE
  "libx100_storage.a"
)
