# Empty compiler generated dependencies file for x100_tpch.
# This may be replaced when dependencies are built.
