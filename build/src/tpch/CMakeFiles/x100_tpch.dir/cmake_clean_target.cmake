file(REMOVE_RECURSE
  "libx100_tpch.a"
)
