file(REMOVE_RECURSE
  "CMakeFiles/x100_tpch.dir/dbgen.cc.o"
  "CMakeFiles/x100_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/x100_tpch.dir/hardcoded.cc.o"
  "CMakeFiles/x100_tpch.dir/hardcoded.cc.o.d"
  "CMakeFiles/x100_tpch.dir/queries_mil.cc.o"
  "CMakeFiles/x100_tpch.dir/queries_mil.cc.o.d"
  "CMakeFiles/x100_tpch.dir/queries_misc.cc.o"
  "CMakeFiles/x100_tpch.dir/queries_misc.cc.o.d"
  "CMakeFiles/x100_tpch.dir/queries_x100_a.cc.o"
  "CMakeFiles/x100_tpch.dir/queries_x100_a.cc.o.d"
  "CMakeFiles/x100_tpch.dir/queries_x100_b.cc.o"
  "CMakeFiles/x100_tpch.dir/queries_x100_b.cc.o.d"
  "libx100_tpch.a"
  "libx100_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
