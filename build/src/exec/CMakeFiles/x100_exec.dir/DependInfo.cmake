
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggr_common.cc" "src/exec/CMakeFiles/x100_exec.dir/aggr_common.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/aggr_common.cc.o.d"
  "/root/repo/src/exec/aggr_direct.cc" "src/exec/CMakeFiles/x100_exec.dir/aggr_direct.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/aggr_direct.cc.o.d"
  "/root/repo/src/exec/aggr_hash.cc" "src/exec/CMakeFiles/x100_exec.dir/aggr_hash.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/aggr_hash.cc.o.d"
  "/root/repo/src/exec/aggr_ord.cc" "src/exec/CMakeFiles/x100_exec.dir/aggr_ord.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/aggr_ord.cc.o.d"
  "/root/repo/src/exec/algebra_parser.cc" "src/exec/CMakeFiles/x100_exec.dir/algebra_parser.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/algebra_parser.cc.o.d"
  "/root/repo/src/exec/basic_ops.cc" "src/exec/CMakeFiles/x100_exec.dir/basic_ops.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/basic_ops.cc.o.d"
  "/root/repo/src/exec/bm_scan.cc" "src/exec/CMakeFiles/x100_exec.dir/bm_scan.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/bm_scan.cc.o.d"
  "/root/repo/src/exec/bound_expr.cc" "src/exec/CMakeFiles/x100_exec.dir/bound_expr.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/bound_expr.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/x100_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join_fetch.cc" "src/exec/CMakeFiles/x100_exec.dir/join_fetch.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/join_fetch.cc.o.d"
  "/root/repo/src/exec/join_hash.cc" "src/exec/CMakeFiles/x100_exec.dir/join_hash.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/join_hash.cc.o.d"
  "/root/repo/src/exec/join_radix.cc" "src/exec/CMakeFiles/x100_exec.dir/join_radix.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/join_radix.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/exec/CMakeFiles/x100_exec.dir/materialize.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/materialize.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/exec/CMakeFiles/x100_exec.dir/predicate.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/predicate.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/x100_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/exec/CMakeFiles/x100_exec.dir/sort.cc.o" "gcc" "src/exec/CMakeFiles/x100_exec.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/x100_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/x100_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/x100_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/x100_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
