# Empty compiler generated dependencies file for x100_exec.
# This may be replaced when dependencies are built.
