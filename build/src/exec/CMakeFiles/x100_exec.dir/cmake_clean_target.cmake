file(REMOVE_RECURSE
  "libx100_exec.a"
)
