# Empty dependencies file for x100_tuple.
# This may be replaced when dependencies are built.
