file(REMOVE_RECURSE
  "CMakeFiles/x100_tuple.dir/item.cc.o"
  "CMakeFiles/x100_tuple.dir/item.cc.o.d"
  "CMakeFiles/x100_tuple.dir/row_ops.cc.o"
  "CMakeFiles/x100_tuple.dir/row_ops.cc.o.d"
  "CMakeFiles/x100_tuple.dir/row_store.cc.o"
  "CMakeFiles/x100_tuple.dir/row_store.cc.o.d"
  "libx100_tuple.a"
  "libx100_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
