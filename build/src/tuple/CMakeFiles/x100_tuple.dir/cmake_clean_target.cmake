file(REMOVE_RECURSE
  "libx100_tuple.a"
)
