file(REMOVE_RECURSE
  "CMakeFiles/x100_vector.dir/vector.cc.o"
  "CMakeFiles/x100_vector.dir/vector.cc.o.d"
  "libx100_vector.a"
  "libx100_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x100_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
