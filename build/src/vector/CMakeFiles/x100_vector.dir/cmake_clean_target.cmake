file(REMOVE_RECURSE
  "libx100_vector.a"
)
