# Empty dependencies file for x100_vector.
# This may be replaced when dependencies are built.
