#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_*.json export against a committed
baseline (bench/baselines/*.json) and fail on regressions.

Usage:
    python3 tools/check_bench.py BENCH_disk_scan.json bench/baselines/disk_scan.json

Baseline schema:
    {
      "bench": "disk_scan",            # must match the export's "bench"
      "require": ["q1_cold", ...],     # series that must exist in the export
      "series": {
        "q1_cold_mb_per_s": {          # series to gate on
          "value": 50.0,               # committed reference value
          "higher_is_better": true,
          "tolerance": 0.25,           # optional; default 0.25 (25%)
          "counter": false             # optional; see below
        }
      }
    }

A series regresses when it is more than `tolerance` WORSE than the committed
value: below value*(1-tol) when higher is better, above value*(1+tol) when
lower is better. Measured values come from the export's "value" (scalars) or
"best" (rep series) field. Baseline values are conservative floors/ceilings,
not exact expectations, so faster results always pass.

Hardware-counter series (IPC, cache misses, ...) are marked "counter": true.
They are gated like any other series when present, but the engine emits them
only where perf_event_open works — a counter series that is missing from the
export, or whose measured value is null, is reported as ABSENT and does NOT
fail the gate (perf-less CI runners must pass). A baseline whose own "value"
is null is informational only: the series is listed but never gated.
"""

import json
import sys


def measured(result):
    if "value" in result and result["value"] is not None:
        return result["value"]
    if "best" in result and result["best"] is not None:
        return result["best"]
    return None


def run(bench_path, baseline_path):
    """Gates `bench_path` against `baseline_path`; returns a process exit
    code (0 ok, 1 regression/malformed)."""
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    if baseline.get("bench") and baseline["bench"] != bench.get("bench"):
        failures.append(
            "bench name mismatch: export=%r baseline=%r"
            % (bench.get("bench"), baseline["bench"])
        )

    results = {r["name"]: r for r in bench.get("results", [])}
    for name in baseline.get("require", []):
        if name not in results:
            failures.append("missing required series: %s" % name)

    print("%-28s %12s %12s %8s  %s" % ("series", "measured", "baseline",
                                       "tol", "status"))
    for name, spec in sorted(baseline.get("series", {}).items()):
        ref = spec["value"]
        tol = spec.get("tolerance", 0.25)
        is_counter = spec.get("counter", False)
        if ref is None:
            # Informational series: no committed reference to gate against.
            got = measured(results[name]) if name in results else None
            print("%-28s %12s %12s %7s  UNGATED"
                  % (name, "-" if got is None else "%.4g" % got, "-", "-"))
            continue
        hib = spec["higher_is_better"]
        if name not in results or measured(results[name]) is None:
            if is_counter:
                # Hardware counters are absent (never zero) without perf
                # access; an absent counter series is not a regression.
                print("%-28s %12s %12g %7.0f%%  ABSENT (counters "
                      "unavailable, ok)" % (name, "-", ref, 100 * tol))
                continue
            if name not in results:
                failures.append("gated series missing from export: %s" % name)
                print("%-28s %12s %12g %7.0f%%  MISSING" % (name, "-", ref,
                                                            100 * tol))
            else:
                failures.append("series %s has no value/best field" % name)
            continue
        got = measured(results[name])
        bad = got < ref * (1 - tol) if hib else got > ref * (1 + tol)
        status = "FAIL" if bad else "ok"
        arrow = ">=" if hib else "<="
        print("%-28s %12.4g %9.4g %s %6.0f%%  %s"
              % (name, got, ref, arrow, 100 * tol, status))
        if bad:
            failures.append(
                "%s regressed: measured %.4g vs baseline %.4g (%s, tol %.0f%%)"
                % (name, got, ref,
                   "higher is better" if hib else "lower is better",
                   100 * tol)
            )

    if failures:
        print("\nBENCH GATE FAILED (%s vs %s):" % (bench_path, baseline_path))
        for msg in failures:
            print("  - " + msg)
        return 1
    print("\nbench gate ok: %s within tolerance of %s"
          % (bench_path, baseline_path))
    return 0


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    return run(sys.argv[1], sys.argv[2])


if __name__ == "__main__":
    sys.exit(main())
