#!/usr/bin/env python3
"""Unit tests for the bench regression gate (tools/check_bench.py).

Run directly (CI does):  python3 tools/check_bench_test.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench  # noqa: E402


def write_json(directory, name, obj):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(obj, f)
    return path


def export(results):
    return {"bench": "t", "results": results}


def baseline(series, require=None):
    b = {"bench": "t", "series": series}
    if require:
        b["require"] = require
    return b


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name
        # The printed table is exercised implicitly; silence it.
        self._stdout = sys.stdout
        sys.stdout = open(os.devnull, "w")

    def tearDown(self):
        sys.stdout.close()
        sys.stdout = self._stdout
        self._tmp.cleanup()

    def gate(self, results, series, require=None):
        bench = write_json(self.dir, "bench.json", export(results))
        base = write_json(self.dir, "base.json", baseline(series, require))
        return check_bench.run(bench, base)

    def test_within_tolerance_passes(self):
        rc = self.gate(
            [{"name": "ms", "value": 11.0}],
            {"ms": {"value": 10.0, "higher_is_better": False,
                    "tolerance": 0.25}},
        )
        self.assertEqual(rc, 0)

    def test_regression_fails(self):
        rc = self.gate(
            [{"name": "ms", "value": 20.0}],
            {"ms": {"value": 10.0, "higher_is_better": False,
                    "tolerance": 0.25}},
        )
        self.assertEqual(rc, 1)

    def test_higher_is_better_regression_fails(self):
        rc = self.gate(
            [{"name": "mbps", "best": 50.0}],
            {"mbps": {"value": 100.0, "higher_is_better": True}},
        )
        self.assertEqual(rc, 1)

    def test_missing_gated_series_fails(self):
        rc = self.gate(
            [], {"ms": {"value": 10.0, "higher_is_better": False}})
        self.assertEqual(rc, 1)

    def test_missing_counter_series_passes(self):
        # Hardware-counter series are absent on perf-less runners; the gate
        # must not treat that as a regression.
        rc = self.gate(
            [],
            {"q1_ipc": {"value": 0.5, "higher_is_better": True,
                        "counter": True}},
        )
        self.assertEqual(rc, 0)

    def test_null_counter_value_passes(self):
        # A counter series exported with a JSON-null value (degraded mode
        # writes absence, never zero) passes the same way.
        rc = self.gate(
            [{"name": "q1_ipc", "value": None}],
            {"q1_ipc": {"value": 0.5, "higher_is_better": True,
                        "counter": True}},
        )
        self.assertEqual(rc, 0)

    def test_present_counter_series_is_gated(self):
        # When counters ARE available the series gates like any other.
        rc = self.gate(
            [{"name": "q1_ipc", "value": 0.1}],
            {"q1_ipc": {"value": 0.5, "higher_is_better": True,
                        "counter": True}},
        )
        self.assertEqual(rc, 1)

    def test_null_noncounter_value_fails(self):
        rc = self.gate(
            [{"name": "ms", "value": None}],
            {"ms": {"value": 10.0, "higher_is_better": False}},
        )
        self.assertEqual(rc, 1)

    def test_null_baseline_value_is_informational(self):
        # value: null in the baseline lists the series but never gates it,
        # present or not.
        rc = self.gate(
            [], {"q1_ipc": {"value": None, "higher_is_better": True}})
        self.assertEqual(rc, 0)
        rc = self.gate(
            [{"name": "q1_ipc", "value": 0.01}],
            {"q1_ipc": {"value": None, "higher_is_better": True}},
        )
        self.assertEqual(rc, 0)

    def test_require_missing_fails(self):
        rc = self.gate([], {}, require=["q1"])
        self.assertEqual(rc, 1)

    def test_bench_name_mismatch_fails(self):
        bench = write_json(self.dir, "bench.json",
                           {"bench": "other", "results": []})
        base = write_json(self.dir, "base.json", baseline({}))
        self.assertEqual(check_bench.run(bench, base), 1)


if __name__ == "__main__":
    unittest.main()
